"""Smoke tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table7" in out

    def test_experiment_registry_complete(self):
        for key in ("table1", "table2", "table5", "fig14", "fig15",
                    "table6", "table7"):
            assert key in EXPERIMENTS

    def test_table7_runs(self, capsys):
        assert main(["table7"]) == 0
        out = capsys.readouterr().out
        assert "SC-DCNN (No.11)" in out
        assert "Nvidia Tesla C2075" in out

    def test_table6_runs(self, capsys):
        assert main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "No.12" in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["table99"])
        assert excinfo.value.code != 0
        err = capsys.readouterr().err
        assert "table99" in err and "invalid choice" in err

    def test_list_shows_registered_backends(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("exact", "surrogate", "float", "noise"):
            assert name in out
        assert "serve" in out

    def test_list_shows_kernel_tier(self, capsys):
        import repro.native as native
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "kernel tier:" in out
        if native.available():
            assert "native" in out
        else:
            assert "numpy fallback" in out

    def test_kernel_tier_line_states(self):
        from repro.__main__ import _kernel_tier_line
        on = _kernel_tier_line({"available": True, "enabled": True,
                                "reason": None, "override": None,
                                "lib": "/x.so"})
        assert on.startswith("native")
        off = _kernel_tier_line({"available": False, "enabled": False,
                                 "reason": "no C compiler found",
                                 "override": None, "lib": None})
        assert "numpy fallback" in off and "no C compiler found" in off
        forced = _kernel_tier_line({"available": False, "enabled": False,
                                    "reason": "disabled by REPRO_NATIVE=0",
                                    "override": "0", "lib": None})
        assert "[REPRO_NATIVE=0]" in forced


class TestInferCli:
    def test_infer_exact_smoke(self, capsys):
        assert main(["infer", "--backend", "exact", "--batch", "4",
                     "--images", "4", "--length", "64",
                     "--train", "200", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "images/s" in out
        assert "error rate" in out
        assert "backend=exact" in out

    def test_infer_float_backend(self, capsys):
        assert main(["infer", "--backend", "float", "--batch", "8",
                     "--images", "16", "--length", "64",
                     "--train", "200", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "backend=float" in out

    def test_infer_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["infer", "--backend", "warp"])
        assert excinfo.value.code != 0
        err = capsys.readouterr().err
        assert "unknown backend 'warp'" in err
        assert "exact" in err  # the message lists what IS registered

    def test_infer_listed(self, capsys):
        assert main(["list"]) == 0
        assert "infer" in capsys.readouterr().out

    def test_infer_zoo_model(self, capsys):
        """--model routes a non-LeNet zoo architecture through the
        engine (the conv-free MLP: the cheapest end-to-end path)."""
        assert main(["infer", "--model", "mlp", "--backend", "exact",
                     "--batch", "4", "--images", "4", "--length", "64",
                     "--train", "200", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "model=mlp" in out
        assert "Max/64 APC-APC" in out  # default kinds follow model depth

    def test_infer_rejects_unknown_model(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["infer", "--model", "resnet"])
        assert excinfo.value.code != 0
        assert "invalid choice" in capsys.readouterr().err

    def test_infer_rejects_kinds_depth_mismatch_before_training(self,
                                                                capsys):
        """A --kinds/--model depth mismatch exits cleanly without
        wasting the training run."""
        with pytest.raises(SystemExit) as excinfo:
            main(["infer", "--model", "mlp", "--kinds", "APC,APC,APC"])
        assert excinfo.value.code != 0
        captured = capsys.readouterr()
        assert "hidden weight layers" in captured.err
        assert "training" not in captured.out  # no quick model trained

    def test_list_shows_zoo(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("lenet5", "lenet_s", "mlp", "conv3"):
            assert name in out


class TestServeCli:
    def test_serve_rejects_unknown_backend(self, capsys):
        """The backend is validated before any model training starts."""
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--backend", "warp"])
        assert excinfo.value.code != 0
        err = capsys.readouterr().err
        assert "unknown backend 'warp'" in err

    def test_serve_help_documents_policy_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--max-batch", "--max-wait-ms", "--workers",
                     "--max-engines", "--port"):
            assert flag in out


class TestDseCli:
    def test_dse_listed(self, capsys):
        assert main(["list"]) == 0
        assert "dse" in capsys.readouterr().out

    def test_resume_needs_store(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["dse", "--resume"])
        assert excinfo.value.code != 0
        assert "--store" in capsys.readouterr().err

    def test_bad_weight_bits_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["dse", "--weight-bits", "eight"])
        assert excinfo.value.code != 0
        assert "comma list of ints" in capsys.readouterr().err

    def test_unknown_model_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["dse", "--model", "resnet50"])
        assert excinfo.value.code != 0
        assert "invalid choice" in capsys.readouterr().err

    def test_dse_end_to_end_with_store_resume_export(self, capsys,
                                                     tmp_path):
        """A tiny search runs, persists, resumes and exports."""
        store = str(tmp_path / "search.jsonl")
        export = str(tmp_path / "frontier.csv")
        args = ["dse", "--model", "mlp", "--train", "150", "--epochs",
                "1", "--eval-images", "40", "--max-length", "64",
                "--min-length", "64", "--threshold", "100",
                "--store", store]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Passing design points" in out
        assert "reused from store 0" in out

        assert main(args + ["--resume", "--export", export]) == 0
        out = capsys.readouterr().out
        assert "reused from store 2" in out  # both MLP combos reused
        assert "frontier exported" in out
        assert (tmp_path / "frontier.csv").read_text().startswith(
            "config,")

    def test_existing_store_without_resume_fails(self, capsys, tmp_path):
        """Fails fast — before any training — instead of clobbering."""
        store = tmp_path / "search.jsonl"
        store.write_text('{"kind": "header", "version": 1}\n')
        with pytest.raises(SystemExit) as excinfo:
            main(["dse", "--model", "mlp", "--train", "150", "--epochs",
                  "1", "--max-length", "64", "--min-length", "64",
                  "--store", str(store)])
        assert excinfo.value.code != 0
        err = capsys.readouterr().err
        assert "already exists" in err and "--resume" in err

    def test_dse_help_documents_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["dse", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--workers", "--screen", "--no-screen", "--resume",
                     "--store", "--margin", "--evaluator", "--export"):
            assert flag in out


class TestEngineErrorPaths:
    def test_weight_bits_alongside_plan_rejected(self, tiny_trained_lenet):
        """Engine(plan=..., weight_bits=...) must fail loudly: the plan
        already fixes the storage precision."""
        from repro.core.config import NetworkConfig, PoolKind
        from repro.engine import Engine, compile_plan

        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 32,
                                       ("APC", "APC", "APC"))
        plan = compile_plan(tiny_trained_lenet, cfg, weight_bits=7)
        with pytest.raises(ValueError, match="weight_bits cannot be "
                                             "combined"):
            Engine(plan=plan, weight_bits=7)
        # and without weight_bits the same plan is accepted
        assert Engine(plan=plan, backend="float") is not None

    def test_engine_requires_model_or_plan(self):
        from repro.engine import Engine
        with pytest.raises(ValueError, match="either"):
            Engine()
