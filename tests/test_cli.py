"""Smoke tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table7" in out

    def test_experiment_registry_complete(self):
        for key in ("table1", "table2", "table5", "fig14", "fig15",
                    "table6", "table7"):
            assert key in EXPERIMENTS

    def test_table7_runs(self, capsys):
        assert main(["table7"]) == 0
        out = capsys.readouterr().out
        assert "SC-DCNN (No.11)" in out
        assert "Nvidia Tesla C2075" in out

    def test_table6_runs(self, capsys):
        assert main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "No.12" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table99"])


class TestInferCli:
    def test_infer_exact_smoke(self, capsys):
        assert main(["infer", "--backend", "exact", "--batch", "4",
                     "--images", "4", "--length", "64",
                     "--train", "200", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "images/s" in out
        assert "error rate" in out
        assert "backend=exact" in out

    def test_infer_float_backend(self, capsys):
        assert main(["infer", "--backend", "float", "--batch", "8",
                     "--images", "16", "--length", "64",
                     "--train", "200", "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "backend=float" in out

    def test_infer_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            main(["infer", "--backend", "warp"])

    def test_infer_listed(self, capsys):
        assert main(["list"]) == 0
        assert "infer" in capsys.readouterr().out
