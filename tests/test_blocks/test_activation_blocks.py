"""Tests for the activation function blocks."""

import numpy as np
import pytest

from repro.blocks.activation import BtanhBlock, StanhBlock
from repro.sc.rng import StreamFactory


class TestStanhBlock:
    def test_call_applies_fsm(self):
        fab = StreamFactory(seed=0)
        block = StanhBlock(8)
        out = block(fab.streams(0.5, 8192))
        assert float(out.value()) == pytest.approx(np.tanh(2.0), abs=0.08)

    def test_mux_max_variant_threshold(self):
        block = StanhBlock.mux_max_variant(20)
        assert block.threshold == 4  # K/5

    def test_expected_curve(self):
        block = StanhBlock(10)
        assert block.expected(0.2) == pytest.approx(np.tanh(1.0))

    def test_threshold_must_be_below_states(self):
        with pytest.raises(ValueError, match="threshold"):
            StanhBlock(8, threshold=8)

    def test_apply_packed_equivalent(self):
        fab = StreamFactory(seed=1)
        s = fab.streams(0.3, 512)
        block = StanhBlock(6)
        np.testing.assert_array_equal(block.apply_packed(s.data, 512),
                                      block(s).data)


class TestBtanhBlock:
    def test_apply_counts(self, rng):
        n = 8
        counts = rng.integers(0, n + 1, (3, 256))
        block = BtanhBlock(n, 2 * n)
        bits = block.apply_counts(counts)
        assert bits.shape == (3, 256)
        assert bits.dtype == bool

    def test_call_returns_stream(self, rng):
        counts = rng.integers(0, 9, (256,))
        block = BtanhBlock(8, 16)
        out = block(counts[None, :])
        assert out.length == 256

    def test_saturating_behaviour(self):
        n = 8
        block = BtanhBlock(n, 2 * n)
        high = block.apply_counts(np.full((1, 128), n, dtype=np.int64))
        low = block.apply_counts(np.zeros((1, 128), dtype=np.int64))
        assert high[0, 8:].all()
        assert not low[0, 8:].any()
