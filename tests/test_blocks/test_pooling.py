"""Tests for the pooling function blocks (Section 4.2, Figure 8)."""

import numpy as np
import pytest

from repro.blocks.pooling import (
    apc_average_pool,
    apc_max_pool,
    average_pool,
    hardware_max_pool,
    segment_selection,
    software_max_pool,
)
from repro.sc import ops
from repro.sc.encoding import Encoding
from repro.sc.rng import StreamFactory


@pytest.fixture()
def factory():
    return StreamFactory(seed=0, encoding=Encoding.UNIPOLAR)


class TestAveragePool:
    def test_mean_of_inputs(self, factory):
        probs = np.array([0.2, 0.4, 0.6, 0.8])
        streams = factory.packed(probs, 8192)
        sel = factory.select_signal(4, 8192)
        out = average_pool(streams, sel, 8192)
        assert ops.popcount(out, 8192) / 8192 == pytest.approx(0.5, abs=0.03)


class TestSegmentSelection:
    def test_shifted_by_one(self):
        scores = np.array([[1, 9, 1], [5, 2, 3], [0, 0, 8], [2, 1, 1]])
        sel = segment_selection(scores)
        # segment 0 fixed to row 0; then argmax of segments 0, 1.
        np.testing.assert_array_equal(sel, [0, 1, 0])


class TestHardwareMaxPool:
    def test_tracks_maximum(self, factory):
        """The selected stream's count approaches the true maximum
        (Table 4: relative deviation ~0.06-0.17)."""
        probs = np.array([0.2, 0.4, 0.6, 0.9])
        streams = factory.packed(np.tile(probs, (20, 1)), 512)
        out = hardware_max_pool(streams, 512, 16)
        sw = software_max_pool(streams, 512)
        dev = (np.abs(ops.popcount(sw, 512) - ops.popcount(out, 512))
               / np.maximum(ops.popcount(sw, 512), 1))
        assert dev.mean() < 0.15

    def test_output_is_composed_of_input_segments(self, factory):
        streams = factory.packed(np.array([0.3, 0.5, 0.7, 0.9]), 128)
        out = hardware_max_pool(streams, 128, 16)
        out_segs = out.reshape(8, 2)
        in_segs = streams.reshape(4, 8, 2)
        for j in range(8):
            matches = (in_segs[:, j, :] == out_segs[j]).all(axis=-1)
            assert matches.any()

    def test_never_exceeds_true_max(self, factory):
        streams = factory.packed(np.array([0.1, 0.2, 0.3, 0.95]), 512)
        out = hardware_max_pool(streams, 512, 16)
        assert (ops.popcount(out, 512)
                <= ops.popcount(streams, 512).max() + 16)

    def test_segment_must_be_byte_aligned(self, factory):
        streams = factory.packed(np.full(4, 0.5), 120)
        with pytest.raises(ValueError, match="multiple of 8"):
            hardware_max_pool(streams, 120, 12)

    def test_length_must_be_segment_multiple(self, factory):
        streams = factory.packed(np.full(4, 0.5), 120)
        with pytest.raises(ValueError, match="multiple of segment"):
            hardware_max_pool(streams, 120, 16)


class TestSoftwareMaxPool:
    def test_returns_largest(self, factory):
        probs = np.array([0.1, 0.9, 0.4, 0.2])
        streams = factory.packed(probs, 1024)
        out = software_max_pool(streams, 1024)
        np.testing.assert_array_equal(out, streams[1])

    def test_batched(self, factory):
        probs = np.array([[0.1, 0.8], [0.9, 0.3]])
        streams = factory.packed(probs, 512)
        out = software_max_pool(streams, 512)
        np.testing.assert_array_equal(out[0], streams[0, 1])
        np.testing.assert_array_equal(out[1], streams[1, 0])


class TestApcAveragePool:
    def test_nearest_rounding(self):
        counts = np.array([[2], [3], [4], [5]], dtype=np.int64)
        assert apc_average_pool(counts, rounding="nearest")[0] == 4

    def test_floor_rounding_paper_example(self):
        """'the mean of (2, 3, 4, 5) is 3.5, represented as 3'."""
        counts = np.array([[2], [3], [4], [5]], dtype=np.int64)
        assert apc_average_pool(counts, rounding="floor")[0] == 3

    def test_unknown_rounding_rejected(self):
        counts = np.zeros((4, 8), dtype=np.int64)
        with pytest.raises(ValueError, match="rounding"):
            apc_average_pool(counts, rounding="stochastic")

    def test_float_counts_rejected(self):
        with pytest.raises(ValueError, match="integers"):
            apc_average_pool(np.zeros((4, 8)))


class TestApcMaxPool:
    def test_selects_largest_count_stream(self, rng):
        """Accumulators integrate noise away: the winner's counts
        dominate the output (Section 4.4)."""
        L = 512
        base = rng.integers(0, 8, (4, L))
        base[2] += 6  # clearly the largest
        out = apc_max_pool(base, 16)
        # After the first few segments the selection locks onto row 2.
        assert out[64:].mean() == pytest.approx(base[2, 64:].mean(),
                                                abs=0.5)

    def test_output_counts_from_inputs(self, rng):
        counts = rng.integers(0, 16, (4, 128))
        out = apc_max_pool(counts, 16)
        segs = counts.reshape(4, 8, 16)
        out_segs = out.reshape(8, 16)
        for j in range(8):
            assert any((segs[k, j] == out_segs[j]).all() for k in range(4))

    def test_bad_segment_rejected(self, rng):
        counts = rng.integers(0, 4, (4, 100))
        with pytest.raises(ValueError, match="segment"):
            apc_max_pool(counts, 16)
