"""Tests for the inner-product function blocks (Section 4.1)."""

import numpy as np
import pytest

from repro.blocks.inner_product import (
    ApcInnerProduct,
    MuxInnerProduct,
    OrInnerProduct,
    TwoLineInnerProduct,
)
from repro.sc.encoding import Encoding


@pytest.fixture()
def xw(rng):
    n = 16
    x = rng.uniform(-1, 1, (8, n))
    w = rng.uniform(-1, 1, (8, n))
    return x, w


class TestOrInnerProduct:
    def test_unipolar_rough_accuracy(self, rng):
        n = 16
        x = rng.uniform(0, 1, (8, n))
        w = rng.uniform(0, 1, (8, n))
        block = OrInnerProduct(n, 2048, encoding=Encoding.UNIPOLAR,
                               scale=16.0)
        est = block.compute(x, w)
        ideal = block.ideal(x, w)
        # Table 1 reports ~0.5 absolute error at n=16.
        assert np.abs(est - ideal).mean() < 1.2

    def test_bipolar_much_worse(self, rng):
        """Table 1's conclusion: bipolar OR addition is unusable."""
        n = 16
        xu = rng.uniform(0, 1, (12, n))
        wu = rng.uniform(0, 1, (12, n))
        uni = OrInnerProduct(n, 1024, encoding=Encoding.UNIPOLAR, scale=16.0)
        err_u = np.abs(uni.compute(xu, wu) - uni.ideal(xu, wu)).mean()
        xb = rng.uniform(-1, 1, (12, n))
        wb = rng.uniform(-1, 1, (12, n))
        bip = OrInnerProduct(n, 1024, encoding=Encoding.BIPOLAR, scale=16.0)
        err_b = np.abs(bip.compute(xb, wb) - bip.ideal(xb, wb)).mean()
        assert err_b > err_u

    def test_invalid_scale(self):
        with pytest.raises(ValueError, match="scale"):
            OrInnerProduct(16, 256, scale=0.5)


class TestMuxInnerProduct:
    def test_estimates_inner_product(self, xw):
        x, w = xw
        block = MuxInnerProduct(16, 4096, seed=0)
        est = block.compute(x, w)
        ideal = block.ideal(x, w)
        # Table 2: ~0.2 absolute error at n=16, L=4096.
        assert np.abs(est - ideal).mean() < 0.6

    def test_error_shrinks_with_length(self, xw):
        """Table 2's trend: longer streams, better accuracy."""
        x, w = xw
        errs = []
        for L in (256, 4096):
            block = MuxInnerProduct(16, L, seed=0)
            errs.append(np.abs(block.compute(x, w) - block.ideal(x, w))
                        .mean())
        assert errs[1] < errs[0]

    def test_error_grows_with_input_size(self, rng):
        """Table 2's trend: more inputs, more dropped bits."""
        errs = []
        for n in (16, 64):
            x = rng.uniform(-1, 1, (10, n))
            w = rng.uniform(-1, 1, (10, n))
            block = MuxInnerProduct(n, 1024, seed=0)
            errs.append(np.abs(block.compute(x, w) - block.ideal(x, w))
                        .mean())
        assert errs[1] > errs[0]

    def test_output_stream_scaled(self, rng):
        n = 8
        x = rng.uniform(-1, 1, n)
        w = rng.uniform(-1, 1, n)
        block = MuxInnerProduct(n, 8192, seed=1)
        from repro.sc.ops import popcount
        stream = block.output_stream(x, w)
        decoded = 2.0 * popcount(stream, 8192) / 8192 - 1.0
        assert decoded * n == pytest.approx((x * w).sum(), abs=1.0)

    def test_wrong_input_size_rejected(self):
        block = MuxInnerProduct(16, 256)
        with pytest.raises(ValueError, match="16"):
            block.compute(np.zeros(8), np.zeros(8))


class TestApcInnerProduct:
    def test_high_accuracy(self, xw):
        """APC keeps nearly all information (Section 4.1)."""
        x, w = xw
        block = ApcInnerProduct(16, 1024, seed=0)
        est = block.compute(x, w)
        assert np.abs(est - block.ideal(x, w)).mean() < 0.25

    def test_approximate_close_to_exact(self, xw):
        x, w = xw
        approx = ApcInnerProduct(16, 512, seed=0, approximate=True)
        exact = ApcInnerProduct(16, 512, seed=0, approximate=False)
        diff = np.abs(approx.compute(x, w) - exact.compute(x, w))
        assert diff.mean() < 0.2  # Table 3: ~1% of the value range

    def test_count_stream_shape(self, xw):
        x, w = xw
        block = ApcInnerProduct(16, 256, seed=0)
        counts = block.count_stream(x, w)
        assert counts.shape == (8, 256)
        assert counts.min() >= 0 and counts.max() <= 16

    def test_more_accurate_than_mux(self, xw):
        x, w = xw
        apc = ApcInnerProduct(16, 1024, seed=0)
        mux = MuxInnerProduct(16, 1024, seed=0)
        err_apc = np.abs(apc.compute(x, w) - apc.ideal(x, w)).mean()
        err_mux = np.abs(mux.compute(x, w) - mux.ideal(x, w)).mean()
        assert err_apc < err_mux


class TestTwoLineInnerProduct:
    def test_small_sum_ok(self, rng):
        n = 4
        x = rng.uniform(-0.3, 0.3, n)
        w = rng.uniform(-0.3, 0.3, n)
        block = TwoLineInnerProduct(n, 4096, seed=0)
        est, overflow = block.compute_with_overflow(x, w)
        assert est == pytest.approx(float((x * w).sum()), abs=0.15)

    def test_large_sum_overflows(self, rng):
        """Section 4.1: overflow makes this block unusable for DCNNs."""
        n = 16
        x = np.full(n, 0.9)
        w = np.full(n, 0.9)
        block = TwoLineInnerProduct(n, 1024, seed=0)
        est, overflow = block.compute_with_overflow(x, w)
        assert est < 2.0  # true sum is ~13
        assert overflow > 0

    def test_rejects_unipolar(self):
        with pytest.raises(ValueError, match="bipolar"):
            TwoLineInnerProduct(4, 256, encoding=Encoding.UNIPOLAR)

    def test_rejects_batched(self):
        block = TwoLineInnerProduct(4, 256)
        with pytest.raises(ValueError, match="one window"):
            block.compute_with_overflow(np.zeros((2, 4)), np.zeros((2, 4)))
