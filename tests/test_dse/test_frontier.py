"""Property tests for the generalized Pareto frontier (hypothesis)."""

import json
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse.frontier import (
    DEFAULT_METRICS,
    LEGACY_METRICS,
    dominates,
    export_frontier,
    frontier_rows,
    halving_trajectories,
    pareto_front,
    pareto_indices,
    point_metrics,
)

metric_value = st.floats(min_value=0.0, max_value=100.0,
                         allow_nan=False, allow_infinity=False)
metric_row = st.tuples(metric_value, metric_value, metric_value,
                       metric_value)
metric_rows = st.lists(metric_row, min_size=0, max_size=40)


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates((1, 1, 1), (2, 2, 2))

    def test_better_in_one_equal_elsewhere(self):
        assert dominates((1, 2, 2), (2, 2, 2))

    def test_equal_tuples_do_not_dominate(self):
        assert not dominates((2, 2), (2, 2))

    def test_tradeoff_does_not_dominate(self):
        assert not dominates((1, 3), (3, 1))
        assert not dominates((3, 1), (1, 3))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            dominates((1, 2), (1, 2, 3))


class TestParetoProperties:
    """The ISSUE's three frontier invariants, property-tested."""

    @settings(max_examples=200, deadline=None)
    @given(metric_rows)
    def test_no_frontier_point_dominated(self, rows):
        front = [rows[i] for i in pareto_indices(rows)]
        for point in front:
            assert not any(dominates(other, point) for other in rows)

    @settings(max_examples=200, deadline=None)
    @given(metric_rows)
    def test_every_non_frontier_point_dominated_by_frontier(self, rows):
        idx = set(pareto_indices(rows))
        front = [rows[i] for i in idx]
        for i, point in enumerate(rows):
            if i not in idx:
                assert any(dominates(f, point) for f in front)

    @settings(max_examples=200, deadline=None)
    @given(metric_rows, st.randoms(use_true_random=False))
    def test_invariant_under_permutation(self, rows, rng):
        shuffled = list(rows)
        rng.shuffle(shuffled)
        base = {rows[i] for i in pareto_indices(rows)}
        perm = {shuffled[i] for i in pareto_indices(shuffled)}
        assert base == perm

    @settings(max_examples=200, deadline=None)
    @given(metric_rows, st.integers(min_value=0, max_value=39))
    def test_invariant_under_duplication(self, rows, which):
        base = {rows[i] for i in pareto_indices(rows)}
        if not rows:
            assert base == set()
            return
        duplicated = rows + [rows[which % len(rows)]]
        dup = {duplicated[i] for i in pareto_indices(duplicated)}
        assert base == dup

    @settings(max_examples=100, deadline=None)
    @given(metric_rows)
    def test_frontier_of_frontier_is_itself(self, rows):
        front = [rows[i] for i in pareto_indices(rows)]
        assert [front[i] for i in pareto_indices(front)] == front

    def test_duplicates_all_kept(self):
        rows = [(1.0, 1.0, 1.0, 1.0)] * 3 + [(2.0, 2.0, 2.0, 2.0)]
        assert pareto_indices(rows) == [0, 1, 2]


def _stub_point(error, area, power, energy, name="p"):
    return SimpleNamespace(
        error_pct=error, degradation_pct=error - 1.0,
        cost=SimpleNamespace(area_mm2=area, power_w=power,
                             energy_uj=energy),
        config=SimpleNamespace(describe=lambda: name),
    )


class TestParetoFront:
    def test_point_metrics_resolution(self):
        p = _stub_point(2.0, 10.0, 1.0, 5.0)
        assert point_metrics(p) == (2.0, 10.0, 1.0, 5.0)
        assert point_metrics(p, LEGACY_METRICS) == (2.0, 10.0, 5.0)

    def test_power_only_dominance_needs_four_metrics(self):
        """A point worse only in power survives the legacy 3-metric
        front but not the generalized 4-metric one."""
        a = _stub_point(1.0, 1.0, 1.0, 1.0)
        b = _stub_point(1.0, 1.0, 2.0, 1.0)
        assert pareto_front([a, b], metrics=LEGACY_METRICS) == [a, b]
        assert pareto_front([a, b], metrics=DEFAULT_METRICS) == [a]

    def test_order_preserved(self):
        pts = [_stub_point(3.0, 1.0, 1.0, 1.0),
               _stub_point(1.0, 3.0, 1.0, 1.0)]
        assert pareto_front(pts) == pts


class TestExport:
    @pytest.fixture()
    def points(self, trained_lenet):
        from repro.core.config import NetworkConfig, PoolKind
        from repro.core.optimizer import DesignPoint
        from repro.engine.graph import build_graph
        from repro.hw.network_cost import graph_network_cost
        pts = []
        for length, err in ((128, 3.0), (64, 5.0)):
            cfg = NetworkConfig.from_kinds(
                PoolKind.MAX, length, ("APC", "APC", "APC"),
                name=f"APC-APC-APC@{length}")
            cost = graph_network_cost(
                build_graph(trained_lenet.model, cfg), weight_bits=8)
            pts.append(DesignPoint(cfg, err, err - 1.0, cost))
        return pts

    def test_csv_export(self, points, tmp_path):
        path = export_frontier(points, tmp_path / "front.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("config,kinds,pooling,length")
        assert len(lines) == 1 + len(pareto_front(points))

    def test_json_export_with_trajectories(self, points, tmp_path):
        trajectories = {"APC-APC-APC|max/w8,8,8,8": [
            {"length": 128, "stage": "full", "error_pct": 3.0,
             "degradation_pct": 2.0, "outcome": "pass"}]}
        path = export_frontier(points, tmp_path / "front.json",
                               trajectories=trajectories)
        payload = json.loads(path.read_text())
        assert payload["metrics"] == list(DEFAULT_METRICS)
        assert payload["trajectories"] == trajectories
        assert len(payload["passing"]) == len(points)

    def test_unknown_suffix_rejected(self, points, tmp_path):
        with pytest.raises(ValueError, match="suffix"):
            export_frontier(points, tmp_path / "front.xml")

    def test_frontier_rows_shape(self, points):
        rows = frontier_rows(points)
        assert rows[0]["kinds"] == "APC-APC-APC"
        assert set(DEFAULT_METRICS) <= set(rows[0])


class TestTrajectories:
    def test_grouped_and_sorted(self):
        from repro.dse.runner import DSERecord
        recs = [
            DSERecord(("APC", "APC"), "max", (8, 8, 8), 64, "full",
                      10.0, 5.0, True, False),
            DSERecord(("APC", "APC"), "max", (8, 8, 8), 128, "full",
                      8.0, 3.0, True, False),
            DSERecord(("MUX", "APC"), "max", (8, 8, 8), 128, "screen",
                      50.0, 45.0, False, False),
        ]
        paths = halving_trajectories(recs)
        apc = paths["APC-APC|max/w8,8,8"]
        assert [row["length"] for row in apc] == [128, 64]
        mux = paths["MUX-APC|max/w8,8,8"]
        assert mux[0]["outcome"] == "screened-out"
