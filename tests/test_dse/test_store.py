"""Tests for the append-only JSONL result store."""

import json

import pytest

from repro.dse.store import ResultStore, make_key


def _store(path, **overrides):
    kwargs = dict(model="lenet5", model_digest="abc123", evaluator="noise",
                  eval_images=40, seed=0, threshold_pct=1.5)
    kwargs.update(overrides)
    return ResultStore(path, **kwargs)


def _key(i=0, stage="full"):
    return make_key("abc123", f"cfg{i}", (8, 8, 8, 8), 128, 0, stage,
                    "noise;samples=96", 40)


def _payload(i=0, error=5.0):
    return {"combo": "APC-APC-APC", "pooling": "max",
            "weight_bits": [8, 8, 8, 8], "length": 128, "seed": 0,
            "stage": "full", "error_pct": error,
            "degradation_pct": error - 1.0, "passed": True}


class TestMakeKey:
    def test_fields_all_present(self):
        key = _key()
        for fragment in ("abc123", "cfg0", "w8,8,8,8", "L128", "s0",
                         "full", "noise;samples=96", "n40"):
            assert fragment in key

    def test_float_bits_spelled(self):
        key = make_key("m", "c", (None, 8), 64, 1, "screen", "b", 10)
        assert "wf,8" in key

    def test_distinct_stages_distinct_keys(self):
        assert _key(stage="full") != _key(stage="screen")


class TestResultStore:
    def test_fresh_store_writes_header(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = _store(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["model_digest"] == "abc123"
        assert len(store) == 0

    def test_round_trip(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = _store(path)
        store.record(_key(0), _payload(0))
        store.record(_key(1), _payload(1, error=7.0))
        loaded = ResultStore(path, model_digest="abc123", resume=True)
        assert len(loaded) == 2
        assert loaded.get(_key(1))["error_pct"] == 7.0
        assert _key(0) in loaded

    def test_record_idempotent(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = _store(path)
        store.record(_key(0), _payload(0, error=5.0))
        store.record(_key(0), _payload(0, error=99.0))  # ignored
        assert store.get(_key(0))["error_pct"] == 5.0
        assert len(path.read_text().splitlines()) == 2  # header + 1

    def test_existing_store_needs_resume(self, tmp_path):
        path = tmp_path / "s.jsonl"
        _store(path)
        with pytest.raises(ValueError, match="resume"):
            _store(path)

    def test_resume_other_model_rejected(self, tmp_path):
        path = tmp_path / "s.jsonl"
        _store(path)
        with pytest.raises(ValueError, match="different model"):
            _store(path, model_digest="zzz999", resume=True)

    def test_torn_final_line_dropped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = _store(path)
        store.record(_key(0), _payload(0))
        with path.open("a") as fh:
            fh.write('{"kind": "result", "key": "torn-')  # killed mid-write
        loaded = ResultStore(path, model_digest="abc123", resume=True)
        assert len(loaded) == 1
        assert loaded.dropped_lines == 1

    def test_complete_tail_missing_newline_normalized(self, tmp_path):
        """A kill can persist a record's JSON but not its newline; the
        record must survive and later appends must not fuse with it."""
        path = tmp_path / "s.jsonl"
        store = _store(path)
        store.record(_key(0), _payload(0))
        with path.open() as fh:
            content = fh.read()
        path.write_text(content.rstrip("\n"))  # drop only the newline
        loaded = ResultStore(path, model_digest="abc123", resume=True)
        assert len(loaded) == 1
        assert loaded.dropped_lines == 0
        loaded.record(_key(1), _payload(1))
        reloaded = ResultStore(path, model_digest="abc123", resume=True)
        assert len(reloaded) == 2
        assert {r["key"] for r in reloaded.results()} == {_key(0),
                                                          _key(1)}

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = _store(path)
        store.record(_key(0), _payload(0))
        with path.open("a") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps({"kind": "result", "key": "k",
                                 "error_pct": 1.0}) + "\n")
        with pytest.raises(ValueError, match="corrupt"):
            ResultStore(path, model_digest="abc123", resume=True)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(json.dumps({"kind": "result", "key": "k"}) + "\n")
        with pytest.raises(ValueError, match="header"):
            ResultStore(path, resume=True)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(json.dumps({"kind": "header", "version": 99,
                                    "model_digest": "abc123"}) + "\n")
        with pytest.raises(ValueError, match="version"):
            ResultStore(path, resume=True)

    def test_resume_empty_file_is_fresh(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.touch()
        store = _store(path, resume=True)
        assert len(store) == 0
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "header"

    def test_results_in_insertion_order(self, tmp_path):
        store = _store(tmp_path / "s.jsonl")
        store.record(_key(1), _payload(1))
        store.record(_key(0), _payload(0))
        keys = [r["key"] for r in store.results()]
        assert keys == [_key(1), _key(0)]

    def test_parent_directory_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "s.jsonl"
        _store(path)
        assert path.exists()
