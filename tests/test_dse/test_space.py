"""Tests for the explicit search space."""

import pytest

from repro.dse.space import Candidate, Scenario, SearchSpace, halving_lengths


class TestHalvingLengths:
    def test_paper_schedule(self):
        assert halving_lengths(1024, 64) == (1024, 512, 256, 128, 64)

    def test_single_round(self):
        assert halving_lengths(128, 128) == (128,)

    def test_floor_not_crossed(self):
        assert halving_lengths(256, 100) == (256, 128)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError, match="min_length"):
            halving_lengths(64, 128)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            halving_lengths(0, 0)


class TestSearchSpace:
    def test_depth_derived_from_lowered_graph(self, tiny_trained_lenet,
                                              zoo_trained):
        lenet = SearchSpace(tiny_trained_lenet)
        assert lenet.hidden_layers == 3
        assert lenet.n_weight_layers == 4
        mlp = SearchSpace(zoo_trained["mlp"])
        assert mlp.hidden_layers == 2
        conv3 = SearchSpace(zoo_trained["conv3"])
        assert conv3.hidden_layers == 4

    def test_combos_match_legacy_enumeration(self, tiny_trained_lenet):
        """Same combos, same order, as the optimizer always produced."""
        space = SearchSpace(tiny_trained_lenet)
        combos = space.combos()
        assert len(combos) == 4
        assert combos[0] == ("MUX", "MUX", "APC")
        assert all(c[-1] == "APC" for c in combos)

    def test_unrestricted_last_layer(self, tiny_trained_lenet):
        space = SearchSpace(tiny_trained_lenet,
                            restrict_last_to_apc=False)
        assert len(space.combos()) == 8

    def test_scenarios_cross_pooling_and_bits(self, tiny_trained_lenet):
        space = SearchSpace(tiny_trained_lenet, poolings=("max", "avg"),
                            weight_bits=(6, 8))
        scenarios = space.scenarios()
        assert len(scenarios) == 4
        assert scenarios[0] == Scenario("max", (6, 6, 6, 6))
        assert {s.pooling for s in scenarios} == {"max", "avg"}

    def test_weight_bits_normalized_and_deduped(self, tiny_trained_lenet):
        space = SearchSpace(tiny_trained_lenet,
                            weight_bits=(8, (8, 8, 8), (6, 7, 8)))
        assert space.weight_bits == ((8, 8, 8, 8), (6, 7, 8, 8))

    def test_float_storage_rejected(self, tiny_trained_lenet):
        with pytest.raises(ValueError, match="float storage"):
            SearchSpace(tiny_trained_lenet, weight_bits=(None,))

    def test_size_upper_bound(self, tiny_trained_lenet):
        space = SearchSpace(tiny_trained_lenet, max_length=256,
                            min_length=64)
        assert space.size == 4 * 1 * 3
        assert "4 combos" in space.describe()

    def test_from_trained_pins_model_pooling(self, trained_lenet):
        space = SearchSpace.from_trained(trained_lenet)
        assert space.poolings == ("max",)
        assert space.lengths() == (1024, 512, 256, 128, 64)

    def test_candidates_enumerate_grid(self, zoo_trained):
        space = SearchSpace(zoo_trained["mlp"], max_length=128,
                            min_length=64)
        cands = list(space.candidates(seed=7))
        assert len(cands) == space.size
        assert all(isinstance(c, Candidate) for c in cands)
        assert {c.length for c in cands} == {128, 64}
        assert all(c.seed == 7 for c in cands)


class TestCandidate:
    def test_config_matches_legacy_naming(self):
        cand = Candidate(("MUX", "APC", "APC"), "max", (8, 8, 8, 8),
                         1024, 0)
        config = cand.config()
        assert config.name == "MUX-APC-APC@1024"
        assert config.length == 1024
        assert cand.combo_label == "MUX-APC-APC"
        assert cand.scenario == Scenario("max", (8, 8, 8, 8))
