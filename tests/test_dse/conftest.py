"""Shared fixtures for the DSE conformance suite.

The equivalence tests need :class:`repro.data.cache.TrainedModel`
wrappers around the session-scoped quick-trained models; building them
once per module keeps the suite fast.
"""

import pytest

from repro.data.cache import TrainedModel
from repro.data.synthetic_mnist import to_bipolar
from repro.nn.trainer import evaluate_error_rate


def _wrap(model, small_dataset, model_name):
    _, _, x_test, y_test = small_dataset
    err = evaluate_error_rate(model, to_bipolar(x_test), y_test)
    return TrainedModel(model=model, pooling="max", x_test=x_test,
                        y_test=y_test, software_error_pct=err,
                        model_name=model_name)


@pytest.fixture(scope="package")
def trained_lenet(tiny_trained_lenet, small_dataset):
    """The briefly-trained LeNet-5 as a TrainedModel."""
    return _wrap(tiny_trained_lenet, small_dataset, "lenet5")


@pytest.fixture(scope="package")
def trained_mlp(zoo_trained, small_dataset):
    """The briefly-trained conv-free MLP as a TrainedModel."""
    return _wrap(zoo_trained["mlp"], small_dataset, "mlp")


@pytest.fixture(scope="package")
def lenet_mid_threshold(trained_lenet):
    """A threshold that genuinely prunes the tiny-LeNet space.

    Derived from the data instead of pinned: the midpoint of the
    first-round (L=128) degradation spread, so at least one combo
    survives and at least one is pruned regardless of the platform's
    numeric details.  Falls back to 100 (no pruning) in the degenerate
    all-equal case.
    """
    from repro.core.optimizer import HolisticOptimizer
    opt = HolisticOptimizer(trained_lenet, threshold_pct=1e9,
                            eval_images=40, seed=0)
    points = opt.run_sequential(max_length=128, min_length=128)
    degs = sorted(p.degradation_pct for p in points)
    if degs[0] == degs[-1]:  # pragma: no cover - degenerate
        return 100.0
    return (degs[0] + degs[-1]) / 2.0
