"""Conformance suite for the parallel DSE runner.

The load-bearing guarantees:

* ``ParallelRunner`` at any worker count reproduces the legacy
  sequential ``HolisticOptimizer.run_sequential`` **bit-identically**
  (same passing set, same errors, same frontier — dataclass equality,
  floats exact);
* interrupted searches resume to the same store contents and the same
  frontier as uninterrupted ones, each point evaluated exactly once;
* surrogate screening never drops a point the full evaluation would
  have passed (the ISSUE's acceptance assert, on the LeNet-5 space).
"""

import json

import pytest

from repro.core.optimizer import HolisticOptimizer
from repro.dse import (
    ParallelRunner,
    ResultStore,
    ScreenPolicy,
    SearchSpace,
)
from repro.dse.runner import EVALUATOR_SPECS
from repro.nn.zoo import model_digest


def _runner(trained, threshold, workers=1, max_length=128, min_length=64,
            **kwargs):
    space = SearchSpace.from_trained(trained, max_length=max_length,
                                     min_length=min_length)
    return ParallelRunner(trained, space, threshold_pct=threshold,
                          eval_images=40, seed=0, workers=workers,
                          **kwargs)


class TestEvaluatorSpecs:
    def test_match_legacy_optimizer_backends(self):
        """The runner's evaluator wiring must equal the legacy
        optimizer's — that equality is the bit-identity contract."""
        for evaluator in ("noise", "surrogate"):
            backend, opts = EVALUATOR_SPECS[evaluator]
            assert backend == HolisticOptimizer._BACKENDS[evaluator]
            assert opts == HolisticOptimizer._BACKEND_OPTS[evaluator]

    def test_unknown_evaluator_rejected(self, trained_lenet):
        with pytest.raises(ValueError, match="evaluator"):
            ParallelRunner(trained_lenet, evaluator="oracle")

    def test_bad_worker_count_rejected(self, trained_lenet):
        with pytest.raises(ValueError, match="workers"):
            ParallelRunner(trained_lenet, workers=0)


class TestLenetEquivalence:
    """workers=1, workers=4 and the legacy loop agree bit-for-bit."""

    @pytest.fixture(scope="class")
    def legacy(self, trained_lenet, lenet_mid_threshold):
        opt = HolisticOptimizer(trained_lenet,
                                threshold_pct=lenet_mid_threshold,
                                eval_images=40, seed=0)
        return opt.run_sequential(max_length=128, min_length=64)

    def test_threshold_actually_prunes(self, trained_lenet, legacy):
        """The derived threshold keeps the comparison meaningful."""
        assert 0 < len(legacy) < 8

    def test_workers1_bit_identical_to_legacy(self, trained_lenet,
                                              lenet_mid_threshold, legacy):
        result = _runner(trained_lenet, lenet_mid_threshold).run()
        assert result.passing == legacy

    def test_workers4_bit_identical_to_legacy(self, trained_lenet,
                                              lenet_mid_threshold, legacy):
        result = _runner(trained_lenet, lenet_mid_threshold,
                         workers=4).run()
        assert result.passing == legacy

    def test_facade_run_delegates(self, trained_lenet,
                                  lenet_mid_threshold, legacy):
        opt = HolisticOptimizer(trained_lenet,
                                threshold_pct=lenet_mid_threshold,
                                eval_images=40, seed=0)
        assert opt.run(max_length=128, min_length=64) == legacy
        assert opt.run(max_length=128, min_length=64,
                       workers=2) == legacy

    def test_frontier_subset_of_passing(self, trained_lenet,
                                        lenet_mid_threshold):
        result = _runner(trained_lenet, lenet_mid_threshold).run()
        assert set(map(id, result.frontier)) <= set(map(id,
                                                        result.passing))


class TestMlpEquivalence:
    def test_workers_match_legacy(self, trained_mlp):
        opt = HolisticOptimizer(trained_mlp, threshold_pct=100.0,
                                eval_images=40, seed=0)
        legacy = opt.run_sequential(max_length=128, min_length=64)
        assert legacy  # every combo survives the generous budget
        for workers in (1, 2):
            result = _runner(trained_mlp, 100.0, workers=workers).run()
            assert result.passing == legacy


class TestExactEvaluator:
    """The runner can drive the bit-level simulator directly."""

    def test_exact_runs_and_is_deterministic(self, trained_mlp):
        def run(workers):
            space = SearchSpace.from_trained(trained_mlp, max_length=64,
                                             min_length=64)
            return ParallelRunner(trained_mlp, space, threshold_pct=1e9,
                                  eval_images=16, seed=0,
                                  evaluator="exact",
                                  workers=workers).run()
        first = run(1)
        assert len(first.passing) == 2  # both MLP combos, one round
        assert all(0.0 <= p.error_pct <= 100.0 for p in first.passing)
        assert run(2).passing == first.passing


class TestResume:
    def test_kill_and_resume_converges(self, trained_lenet,
                                       lenet_mid_threshold, tmp_path):
        digest = model_digest(trained_lenet.model)

        def fresh_store(path, resume=False):
            return ResultStore(path, model="lenet5", model_digest=digest,
                               evaluator="noise", eval_images=40, seed=0,
                               resume=resume)

        full_path = tmp_path / "full.jsonl"
        baseline = _runner(trained_lenet, lenet_mid_threshold,
                           store=fresh_store(full_path)).run()
        lines = full_path.read_text().splitlines()
        n_results = len(lines) - 1
        assert n_results == baseline.stats["full_evals"]

        # Simulate a search killed after k points — plus the torn line
        # a mid-write kill leaves behind.
        k = n_results // 2
        assert k >= 1
        part_path = tmp_path / "part.jsonl"
        part_path.write_text("\n".join(lines[:1 + k]) + "\n"
                             + '{"kind": "result", "key": "torn')
        store = fresh_store(part_path, resume=True)
        assert store.dropped_lines == 1
        result = _runner(trained_lenet, lenet_mid_threshold,
                         store=store).run()

        assert result.passing == baseline.passing
        assert result.frontier == baseline.frontier
        assert result.stats["reused"] == k
        assert result.stats["full_evals"] == n_results - k

        # The final store holds each point exactly once, and exactly
        # the uninterrupted run's point set.
        final = [json.loads(line)
                 for line in part_path.read_text().splitlines()]
        keys = [r["key"] for r in final if r.get("kind") == "result"]
        assert len(keys) == len(set(keys)) == n_results
        base_keys = [json.loads(line)["key"] for line in lines[1:]]
        assert set(keys) == set(base_keys)

    def test_resumed_run_with_same_store_reuses_everything(
            self, trained_lenet, lenet_mid_threshold, tmp_path):
        digest = model_digest(trained_lenet.model)
        path = tmp_path / "s.jsonl"
        store = ResultStore(path, model_digest=digest, evaluator="noise",
                            eval_images=40, seed=0)
        baseline = _runner(trained_lenet, lenet_mid_threshold,
                           store=store).run()
        again = _runner(
            trained_lenet, lenet_mid_threshold,
            store=ResultStore(path, model_digest=digest, resume=True),
        ).run()
        assert again.passing == baseline.passing
        assert again.stats["full_evals"] == 0
        assert again.stats["reused"] == baseline.stats["full_evals"]

    def test_fully_resumed_search_spawns_no_workers(
            self, trained_lenet, lenet_mid_threshold, tmp_path,
            monkeypatch):
        """A search satisfied entirely from the store must not pay for
        a process pool (or even an in-process plan cache)."""
        import repro.dse.runner as runner_mod
        digest = model_digest(trained_lenet.model)
        path = tmp_path / "s.jsonl"
        store = ResultStore(path, model_digest=digest, evaluator="noise",
                            eval_images=40, seed=0)
        baseline = _runner(trained_lenet, lenet_mid_threshold,
                           store=store).run()

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("worker pool spawned on a fully-"
                                 "resumed search")

        monkeypatch.setattr(runner_mod, "ProcessPoolExecutor", boom)
        monkeypatch.setattr(runner_mod, "_EvalContext", boom)
        resumed = _runner(
            trained_lenet, lenet_mid_threshold, workers=2,
            store=ResultStore(path, model_digest=digest, resume=True),
        ).run()
        assert resumed.passing == baseline.passing

    def test_store_for_other_model_rejected(self, trained_lenet,
                                            tmp_path):
        store = ResultStore(tmp_path / "s.jsonl",
                            model_digest="not-this-model")
        with pytest.raises(ValueError, match="different model"):
            ParallelRunner(trained_lenet, store=store)


class TestScreening:
    def test_never_drops_a_passing_point(self, trained_lenet,
                                         lenet_mid_threshold):
        """The ISSUE acceptance assert: with the default (conservative)
        policy, the screened search's passing set equals the unscreened
        one on the LeNet-5 space — screening only ever skips points the
        full evaluation would have failed anyway."""
        plain = _runner(trained_lenet, lenet_mid_threshold).run()
        screened = _runner(trained_lenet, lenet_mid_threshold,
                           screen=True).run()
        assert screened.passing == plain.passing
        assert screened.frontier == plain.frontier
        # Honest accounting: every candidate was screened, and full
        # evaluations ran only for promoted candidates.
        screen_records = [r for r in screened.records
                          if r.stage == "screen"]
        full_records = [r for r in screened.records if r.stage == "full"]
        assert screened.stats["screen_evals"] == len(screen_records)
        assert screened.stats["screened_out"] == sum(
            not r.passed for r in screen_records)
        assert len(full_records) == sum(r.passed for r in screen_records)

    def test_hopeless_budget_screens_everything(self, trained_lenet):
        """With an unreachable budget and no margin, the screen rejects
        every candidate and the search never pays a full evaluation."""
        result = _runner(trained_lenet, -1000.0,
                         screen=ScreenPolicy(margin_pct=0.0)).run()
        assert result.passing == []
        assert result.stats["full_evals"] == 0
        assert result.stats["screened_out"] == 4  # every L=128 combo
        plain = _runner(trained_lenet, -1000.0).run()
        assert plain.passing == []  # screening changed nothing

    def test_screen_parallel_matches_sequential(self, trained_lenet,
                                                lenet_mid_threshold):
        seq = _runner(trained_lenet, lenet_mid_threshold,
                      screen=True).run()
        par = _runner(trained_lenet, lenet_mid_threshold, workers=2,
                      screen=True).run()
        assert par.passing == seq.passing
        assert par.stats["screened_out"] == seq.stats["screened_out"]

    def test_trajectories_cover_all_records(self, trained_lenet,
                                            lenet_mid_threshold):
        result = _runner(trained_lenet, lenet_mid_threshold,
                         screen=True).run()
        paths = result.trajectories()
        assert sum(len(p) for p in paths.values()) == len(result.records)
        assert all(label.endswith("|max/w8,8,8,8") for label in paths)


class TestScreenPolicy:
    def test_default_images_quarter_floored(self):
        policy = ScreenPolicy()
        assert policy.resolve_images(400) == 100
        assert policy.resolve_images(64) == 32
        assert policy.resolve_images(16) == 16  # never above the full pass

    def test_explicit_images_capped(self):
        assert ScreenPolicy(images=500).resolve_images(400) == 400

    def test_backend_opts(self):
        assert ScreenPolicy().backend_opts() == {"noisy": False,
                                                 "samples": 60}
        assert ScreenPolicy(backend="float").backend_opts() == {}

    def test_promotes_margin_semantics(self):
        policy = ScreenPolicy(margin_pct=5.0)
        assert policy.promotes(6.4, threshold_pct=1.5)
        assert not policy.promotes(6.6, threshold_pct=1.5)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="screen backend"):
            ScreenPolicy(backend="exact")

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError, match="margin"):
            ScreenPolicy(margin_pct=-1.0)
