"""Fault-injected recovery tests for the DSE tier.

The contract under test: evaluations are pure functions, so every
recovery path — worker death, in-band exceptions, hangs, store write
failures — must reconverge to results *bit-identical* to a fault-free
run (quarantined points excepted: they are recorded as poisoned and
excluded deterministically).
"""

import json

import pytest

from repro import faults
from repro.dse import ParallelRunner, ResultStore, SearchSpace
from repro.faults import FaultSpec
from repro.nn.zoo import model_digest


def _runner(trained, threshold, workers=1, store=None, **kwargs):
    space = SearchSpace.from_trained(trained, max_length=128,
                                     min_length=64)
    return ParallelRunner(trained, space, threshold_pct=threshold,
                          eval_images=40, seed=0, workers=workers,
                          store=store, **kwargs)


def _store(tmp_path, trained, threshold, name="run.jsonl", resume=False):
    return ResultStore(tmp_path / name, model="lenet5",
                       model_digest=model_digest(trained.model),
                       evaluator="noise", eval_images=40, seed=0,
                       threshold_pct=threshold, resume=resume)


@pytest.fixture(scope="module")
def baseline(trained_lenet, lenet_mid_threshold):
    """The fault-free search every recovered run must reproduce."""
    return _runner(trained_lenet, lenet_mid_threshold).run()


class TestWorkerCrashRecovery:
    def test_killed_worker_recovers_bit_identically(
            self, tmp_path, trained_lenet, lenet_mid_threshold, baseline):
        """A latch-kill takes out exactly one worker mid-round; the
        respawned pool re-dispatches the lost points and the final
        passing set, frontier and store are bit-identical to the
        uninterrupted run, each key evaluated exactly once."""
        latch = tmp_path / "kill.latch"
        latch.touch()
        store = _store(tmp_path, trained_lenet, lenet_mid_threshold)
        runner = _runner(trained_lenet, lenet_mid_threshold, workers=2,
                         store=store)
        with faults.armed(FaultSpec(site="dse.evaluate", action="kill",
                                    rate=1.0, latch=str(latch))):
            result = runner.run()
        assert not latch.exists()  # the kill really happened
        assert result.stats["respawns"] >= 1
        assert result.stats["retries"] >= 1
        assert result.passing == baseline.passing
        assert result.frontier == baseline.frontier
        # exactly-once: every store key appears on exactly one line
        lines = [json.loads(line) for line in
                 (tmp_path / "run.jsonl").read_text().splitlines()]
        keys = [r["key"] for r in lines if r.get("kind") == "result"]
        assert len(keys) == len(set(keys))
        assert len(keys) == len(result.records)

    def test_resume_after_crash_run_matches_uninterrupted(
            self, tmp_path, trained_lenet, lenet_mid_threshold, baseline):
        """Resuming the post-crash store spawns no new evaluations and
        reproduces the same passing set."""
        latch = tmp_path / "kill2.latch"
        latch.touch()
        store = _store(tmp_path, trained_lenet, lenet_mid_threshold,
                       name="resume.jsonl")
        with faults.armed(FaultSpec(site="dse.evaluate", action="kill",
                                    rate=1.0, latch=str(latch))):
            first = _runner(trained_lenet, lenet_mid_threshold, workers=2,
                            store=store).run()
        resumed_store = _store(tmp_path, trained_lenet,
                               lenet_mid_threshold, name="resume.jsonl",
                               resume=True)
        resumed = _runner(trained_lenet, lenet_mid_threshold,
                          store=resumed_store).run()
        assert resumed.stats["full_evals"] == 0
        assert resumed.stats["screen_evals"] == 0
        assert resumed.passing == first.passing == baseline.passing


class TestQuarantine:
    def test_persistent_failure_poisons_one_point(
            self, tmp_path, trained_lenet, lenet_mid_threshold, baseline):
        """A point that fails every retry is quarantined: recorded as
        poisoned, pruned from its combo, excluded from passing — and
        the rest of the search is untouched."""
        victim = baseline.records[0]
        label = f"{victim.combo_label}@{victim.length}"
        store = _store(tmp_path, trained_lenet, lenet_mid_threshold)
        runner = _runner(trained_lenet, lenet_mid_threshold, store=store,
                         retries=1, backoff_s=0.0)
        with faults.armed(FaultSpec(site="dse.evaluate", action="raise",
                                    rate=1.0, match=label)):
            result = runner.run()
        assert result.stats["poisoned"] == 1
        assert result.stats["retries"] == 1
        bad = [r for r in result.records if r.poisoned]
        assert len(bad) == 1
        assert bad[0].kinds == victim.kinds
        assert bad[0].length == victim.length
        assert bad[0].error_pct is None and not bad[0].passed
        # the poisoned combo contributes nothing; everything else is
        # bit-identical to the fault-free run
        expected = [p for p in baseline.passing
                    if not p.config.name.startswith(
                        f"{victim.combo_label}@")]
        assert result.passing == expected
        # the trajectory export carries the distinct outcome
        rows = result.trajectories()[bad[0].scenario_label]
        assert any(row["outcome"] == "poisoned"
                   and row["error_pct"] is None for row in rows)

    def test_poisoned_point_stays_quarantined_on_resume(
            self, tmp_path, trained_lenet, lenet_mid_threshold, baseline):
        victim = baseline.records[0]
        label = f"{victim.combo_label}@{victim.length}"
        store = _store(tmp_path, trained_lenet, lenet_mid_threshold,
                       name="poison.jsonl")
        with faults.armed(FaultSpec(site="dse.evaluate", action="raise",
                                    rate=1.0, match=label)):
            first = _runner(trained_lenet, lenet_mid_threshold,
                            store=store, retries=0, backoff_s=0.0).run()
        rows = [json.loads(line) for line in
                (tmp_path / "poison.jsonl").read_text().splitlines()]
        poisoned_rows = [r for r in rows if r.get("poisoned")]
        assert len(poisoned_rows) == 1
        assert poisoned_rows[0]["error_pct"] is None
        # resume with NO faults armed: the quarantined key is reused,
        # not re-evaluated, and the outcome is unchanged
        resumed_store = _store(tmp_path, trained_lenet,
                               lenet_mid_threshold, name="poison.jsonl",
                               resume=True)
        resumed = _runner(trained_lenet, lenet_mid_threshold,
                          store=resumed_store).run()
        assert resumed.stats["full_evals"] == 0
        assert resumed.stats["poisoned"] == 0  # reused, not re-poisoned
        assert sum(1 for r in resumed.records if r.poisoned) == 1
        assert resumed.passing == first.passing


class TestTimeout:
    def test_hung_evaluation_times_out_and_recovers(
            self, tmp_path, trained_lenet, lenet_mid_threshold, baseline):
        """One evaluation sleeps past ``eval_timeout_s``; the stuck
        worker is torn down with the pool and the re-dispatched point
        completes — results bit-identical to the no-fault run."""
        latch = tmp_path / "sleep.latch"
        latch.touch()
        runner = _runner(trained_lenet, lenet_mid_threshold, workers=2,
                         eval_timeout_s=1.0, backoff_s=0.0)
        with faults.armed(FaultSpec(site="dse.evaluate", action="sleep",
                                    sleep_s=30.0, rate=1.0,
                                    latch=str(latch))):
            result = runner.run()
        assert result.stats["timeouts"] >= 1
        assert result.stats["respawns"] >= 1
        assert result.passing == baseline.passing


class TestStoreDegradation:
    def test_failing_disk_never_fails_the_search(
            self, tmp_path, trained_lenet, lenet_mid_threshold, baseline):
        """Store appends raising ``OSError`` are retried, then the store
        is dropped — the search still completes with full results."""
        store = _store(tmp_path, trained_lenet, lenet_mid_threshold,
                       name="disk.jsonl")
        runner = _runner(trained_lenet, lenet_mid_threshold, store=store)
        with faults.armed(FaultSpec(site="store.append", action="ioerror",
                                    rate=1.0)):
            result = runner.run()
        # 3 attempts on the first record, then store-less for the rest
        assert result.stats["store_errors"] == 3
        assert result.passing == baseline.passing
        assert result.frontier == baseline.frontier
        # nothing but the header ever landed on disk
        rows = [json.loads(line) for line in
                (tmp_path / "disk.jsonl").read_text().splitlines()]
        assert [r["kind"] for r in rows] == ["header"]
