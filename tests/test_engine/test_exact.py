"""Bit-identity of the batched exact backend vs the frozen legacy oracle.

The acceptance bar for the engine refactor: on fixed seeds, the batched
``exact`` backend must produce *bit-identical* logits to the pre-engine
``SCNetwork`` (frozen verbatim in :mod:`repro.engine.reference`), for
every inner-product-kind / pooling family and with quantized storage.
"""

import numpy as np
import pytest

from repro.core.config import NetworkConfig, PoolKind
from repro.core.network import SCNetwork
from repro.data.synthetic_mnist import to_bipolar
from repro.engine import Engine
from repro.engine.reference import ReferenceSCNetwork


@pytest.fixture(scope="module")
def images(small_dataset):
    _, _, x_test, _ = small_dataset
    return to_bipolar(x_test)[:5]


def _logits(net, imgs):
    return np.stack([net.forward_image(i) for i in imgs])


class TestBitIdentityVsLegacy:
    @pytest.mark.parametrize("pooling,kinds,length,bits", [
        (PoolKind.MAX, ("APC", "APC", "APC"), 128, None),
        (PoolKind.MAX, ("MUX", "APC", "APC"), 64, 7),
        (PoolKind.MAX, ("APC", "MUX", "APC"), 64, None),
        (PoolKind.AVG, ("MUX", "MUX", "MUX"), 64, None),
        (PoolKind.AVG, ("APC", "APC", "APC"), 64, (7, 7, 6)),
        (PoolKind.AVG, ("APC", "MUX", "APC"), 128, 6),
    ])
    def test_batched_engine_matches_sequential_legacy(
            self, tiny_trained_lenet, images, pooling, kinds, length, bits):
        cfg = NetworkConfig.from_kinds(pooling, length, kinds)
        legacy = ReferenceSCNetwork(tiny_trained_lenet, cfg, seed=3,
                                    weight_bits=bits)
        engine = Engine(tiny_trained_lenet, cfg, backend="exact", seed=3,
                        weight_bits=bits)
        np.testing.assert_array_equal(_logits(legacy, images),
                                      engine.forward(images))

    def test_facade_matches_legacy(self, tiny_trained_lenet, images):
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 64,
                                       ("MUX", "APC", "APC"))
        legacy = ReferenceSCNetwork(tiny_trained_lenet, cfg, seed=1)
        facade = SCNetwork(tiny_trained_lenet, cfg, seed=1)
        np.testing.assert_array_equal(legacy.predict(images),
                                      facade.predict(images))


class TestBatchingInvariance:
    def test_batched_equals_single_image_calls(self, tiny_trained_lenet,
                                               images):
        """One predict(batch) == fresh-engine per-image calls, bit for bit
        (the stream factory draws the same PRNG sequence either way)."""
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 64,
                                       ("APC", "APC", "APC"))
        batched = Engine(tiny_trained_lenet, cfg, backend="exact",
                         seed=7).forward(images)
        sequential = Engine(tiny_trained_lenet, cfg, backend="exact",
                            seed=7)
        seq = np.stack([sequential.forward(img[None])[0]
                        for img in images.reshape(len(images), -1)])
        np.testing.assert_array_equal(batched, seq)

    def test_mux_selects_match_across_batching(self, tiny_trained_lenet,
                                               images):
        """MUX select signals are pre-drawn in legacy image-major order."""
        cfg = NetworkConfig.from_kinds(PoolKind.AVG, 64,
                                       ("MUX", "MUX", "MUX"))
        batched = Engine(tiny_trained_lenet, cfg, backend="exact",
                         seed=2).forward(images)
        sequential = Engine(tiny_trained_lenet, cfg, backend="exact",
                            seed=2)
        seq = np.stack([sequential.forward(img[None])[0]
                        for img in images.reshape(len(images), -1)])
        np.testing.assert_array_equal(batched, seq)

    def test_internal_batch_splitting_is_invisible(self, tiny_trained_lenet,
                                                   images):
        """A tiny batch budget forces internal chunking; results match."""
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 64,
                                       ("APC", "APC", "APC"))
        whole = Engine(tiny_trained_lenet, cfg, backend="exact",
                       seed=5).forward(images)
        split = Engine(tiny_trained_lenet, cfg, backend="exact", seed=5,
                       batch_budget=1).forward(images)
        np.testing.assert_array_equal(whole, split)

    def test_lfsr_sng_batch_size_invariant(self, tiny_trained_lenet,
                                           images):
        """The pooled-LFSR SNG advances per call; the backend encodes one
        image per call so batching stays invariant there too."""
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 64,
                                       ("APC", "APC", "APC"))
        batched = Engine(tiny_trained_lenet, cfg, backend="exact",
                         seed=9, sng="lfsr").forward(images)
        sequential = Engine(tiny_trained_lenet, cfg, backend="exact",
                            seed=9, sng="lfsr")
        seq = np.stack([sequential.forward(img[None])[0]
                        for img in images.reshape(len(images), -1)])
        np.testing.assert_array_equal(batched, seq)

    def test_counting_tile_size_is_invisible(self, tiny_trained_lenet,
                                             images):
        """chunk_budget tiles the counting loop without changing results."""
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 64,
                                       ("APC", "APC", "APC"))
        a = Engine(tiny_trained_lenet, cfg, backend="exact",
                   seed=5).forward(images[:2])
        b = Engine(tiny_trained_lenet, cfg, backend="exact", seed=5,
                   chunk_budget=1 << 12).forward(images[:2])
        np.testing.assert_array_equal(a, b)


class TestExactValidation:
    @pytest.fixture(scope="class")
    def engine(self, tiny_trained_lenet):
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 64,
                                       ("APC", "APC", "APC"))
        return Engine(tiny_trained_lenet, cfg, backend="exact", seed=0)

    def test_rejects_wrong_size(self, engine):
        with pytest.raises(ValueError, match="784"):
            engine.forward(np.zeros((2, 1, 10, 10)))

    def test_rejects_wrong_size_batch_totalling_784(self, engine):
        """A (4, 196) batch must not be reinterpreted as one 784-pixel
        image just because its total size matches."""
        with pytest.raises(ValueError, match="784"):
            engine.forward(np.zeros((4, 196)))

    def test_rejects_out_of_range(self, engine):
        with pytest.raises(ValueError, match=r"\[-1, 1\]"):
            engine.forward(np.full((1, 1, 28, 28), 2.0))

    def test_single_2d_image_accepted(self, engine, images):
        out = engine.forward(images[0].reshape(28, 28))
        assert out.shape == (1, 10)


class TestForwardIndependent:
    """The serving contract: per-request stream state inside one batch."""

    @pytest.mark.parametrize("pooling,kinds,sng", [
        (PoolKind.MAX, ("APC", "APC", "APC"), "ideal"),
        (PoolKind.AVG, ("MUX", "APC", "APC"), "ideal"),
        (PoolKind.MAX, ("APC", "APC", "APC"), "lfsr"),
    ])
    def test_rows_match_fresh_single_request_engines(
            self, tiny_trained_lenet, images, pooling, kinds, sng):
        cfg = NetworkConfig.from_kinds(pooling, 64, kinds)
        shared = Engine(tiny_trained_lenet, cfg, backend="exact", seed=11,
                        sng=sng)
        batched = shared.backend.forward_independent(
            images.reshape(len(images), -1)[:3])
        fresh = np.stack([
            Engine(tiny_trained_lenet, cfg, backend="exact", seed=11,
                   sng=sng).forward(img[None])[0]
            for img in images.reshape(len(images), -1)[:3]
        ])
        np.testing.assert_array_equal(batched, fresh)

    def test_does_not_perturb_stateful_forward(self, tiny_trained_lenet,
                                               images):
        """Interleaving forward_independent calls leaves the engine's own
        stream sequence untouched."""
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 64,
                                       ("APC", "APC", "APC"))
        plain = Engine(tiny_trained_lenet, cfg, backend="exact",
                       seed=7).forward(images)
        interleaved = Engine(tiny_trained_lenet, cfg, backend="exact",
                             seed=7)
        interleaved.backend.forward_independent(
            images.reshape(len(images), -1)[:2])
        np.testing.assert_array_equal(plain, interleaved.forward(images))

    def test_repeated_calls_are_identical(self, tiny_trained_lenet,
                                          images):
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 64,
                                       ("APC", "APC", "APC"))
        backend = Engine(tiny_trained_lenet, cfg, backend="exact",
                         seed=3).backend
        flat = images.reshape(len(images), -1)[:3]
        np.testing.assert_array_equal(backend.forward_independent(flat),
                                      backend.forward_independent(flat))

    def test_batch_composition_is_invisible(self, tiny_trained_lenet,
                                            images):
        """A request's row does not depend on its batch-mates."""
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 64,
                                       ("APC", "APC", "APC"))
        backend = Engine(tiny_trained_lenet, cfg, backend="exact",
                         seed=5).backend
        flat = images.reshape(len(images), -1)
        whole = backend.forward_independent(flat[:4])
        np.testing.assert_array_equal(
            whole[2], backend.forward_independent(flat[2:3])[0])
        np.testing.assert_array_equal(
            whole[1:3], backend.forward_independent(flat[1:3]))
