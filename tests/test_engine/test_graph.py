"""Tests for the layer-graph IR builder."""

import pytest

from repro.core.config import FEBKind, NetworkConfig, PoolKind
from repro.engine.graph import build_graph
from repro.nn.dense import Dense
from repro.nn.module import Sequential


@pytest.fixture(scope="module")
def mixed_config():
    return NetworkConfig.from_kinds(PoolKind.MAX, 128,
                                    ("MUX", "APC", "APC"))


class TestBuildGraph:
    def test_node_structure(self, tiny_trained_lenet, mixed_config):
        graph = build_graph(tiny_trained_lenet, mixed_config)
        assert [n.name for n in graph] == ["Layer0", "Layer1", "Layer2",
                                           "Output"]
        assert [n.op for n in graph] == ["conv", "conv", "dense", "dense"]
        assert [n.kind for n in graph] == [FEBKind.MUX, FEBKind.APC,
                                           FEBKind.APC, FEBKind.APC]
        assert [n.n_inputs for n in graph] == [26, 501, 801, 501]
        assert [n.units for n in graph] == [20, 50, 500, 10]

    def test_pooled_and_final_flags(self, tiny_trained_lenet, mixed_config):
        nodes = build_graph(tiny_trained_lenet, mixed_config).nodes
        assert [n.pooled for n in nodes] == [True, True, False, False]
        assert [n.final for n in nodes] == [False, False, False, True]

    def test_conv_geometry_derived(self, tiny_trained_lenet, mixed_config):
        nodes = build_graph(tiny_trained_lenet, mixed_config).nodes
        assert nodes[0].geometry == (20, (28, 28), (24, 24))
        assert nodes[1].geometry == (50, (12, 12), (8, 8))
        assert nodes[2].geometry is None

    def test_output_layer_forced_apc(self, tiny_trained_lenet):
        cfg = NetworkConfig.from_kinds(PoolKind.AVG, 64,
                                       ("MUX", "MUX", "MUX"))
        nodes = build_graph(tiny_trained_lenet, cfg).nodes
        assert nodes[3].kind is FEBKind.APC

    def test_weights_are_views_not_copies(self, tiny_trained_lenet,
                                          mixed_config):
        graph = build_graph(tiny_trained_lenet, mixed_config)
        conv1 = [l for l in tiny_trained_lenet.layers
                 if hasattr(l, "out_channels")][0]
        assert graph.nodes[0].weight is conv1.weight.value

    def test_rejects_config_depth_mismatch(self, mixed_config):
        """A 3-kind config cannot lower a single-layer model."""
        model = Sequential([Dense(784, 10)])
        with pytest.raises(ValueError, match="3 layer kinds"):
            build_graph(model, mixed_config)

    def test_describe_lists_every_node(self, tiny_trained_lenet,
                                       mixed_config):
        text = build_graph(tiny_trained_lenet, mixed_config).describe()
        assert "Layer0" in text and "Output" in text
        assert "+pool" in text
