"""Tests for plan compilation: determinism, reuse, quantization."""

import numpy as np
import pytest

from repro.core.config import FEBKind, NetworkConfig, PoolKind
from repro.engine.graph import build_graph
from repro.engine.plan import (
    compile_plan,
    conv_patch_index,
    normalize_weight_bits,
    pool_window_indices,
)


def _cfg(kinds, length=128, pooling=PoolKind.MAX):
    return NetworkConfig.from_kinds(pooling, length, kinds)


class TestCompileDeterminism:
    def test_two_compilations_identical(self, tiny_trained_lenet):
        """Compilation uses no randomness: plans are bit-for-bit equal."""
        cfg = _cfg(("MUX", "APC", "APC"))
        a = compile_plan(tiny_trained_lenet, cfg, weight_bits=7)
        b = compile_plan(tiny_trained_lenet, cfg, weight_bits=7)
        for la, lb in zip(a.layers, b.layers):
            np.testing.assert_array_equal(la.weights, lb.weights)
            np.testing.assert_array_equal(la.dense_weights, lb.dense_weights)
            np.testing.assert_array_equal(la.raw_weights, lb.raw_weights)
            assert la.n_states == lb.n_states
            assert la.deficit == lb.deficit

    def test_accepts_prebuilt_graph(self, tiny_trained_lenet):
        cfg = _cfg(("APC", "APC", "APC"))
        graph = build_graph(tiny_trained_lenet, cfg)
        plan = compile_plan(graph)
        assert plan.config is cfg
        assert len(plan.layers) == 4

    def test_model_without_config_rejected(self, tiny_trained_lenet):
        with pytest.raises(ValueError, match="NetworkConfig"):
            compile_plan(tiny_trained_lenet)


class TestPlanContents:
    def test_exact_weights_fold_bias(self, tiny_trained_lenet):
        plan = compile_plan(tiny_trained_lenet, _cfg(("APC", "APC", "APC")))
        for lp in plan.layers:
            assert lp.weights.shape == (lp.units, lp.n_inputs)

    def test_quantization_grid(self, tiny_trained_lenet):
        plan = compile_plan(tiny_trained_lenet, _cfg(("APC", "APC", "APC")),
                            weight_bits=4)
        codes = (plan.layers[0].weights + 1.0) / 2.0 * 16
        np.testing.assert_allclose(codes, np.round(codes), atol=1e-9)

    def test_gain_deficits_cascade(self, tiny_trained_lenet):
        plan = compile_plan(tiny_trained_lenet, _cfg(("MUX", "APC", "APC")))
        assert len(plan.gain_deficits) == 4
        assert all(d >= 1.0 for d in plan.gain_deficits)

    def test_conv_indices_attached(self, tiny_trained_lenet):
        plan = compile_plan(tiny_trained_lenet, _cfg(("APC", "APC", "APC")))
        l0, l1, l2, l3 = plan.layers
        assert l0.patch_index.shape == (576, 25)
        assert l1.patch_index.shape == (64, 500)
        assert l0.pool_windows.shape == (144, 4)
        assert l2.patch_index is None

    def test_states_follow_paper_equations(self, tiny_trained_lenet):
        from repro.core.state_numbers import (
            btanh_states_apc_max,
            stanh_states_mux_max,
        )
        plan = compile_plan(tiny_trained_lenet, _cfg(("MUX", "APC", "APC")))
        assert plan.layers[0].n_states == stanh_states_mux_max(128, 26)
        assert plan.layers[1].n_states == btanh_states_apc_max(501)
        assert plan.layers[3].n_states == 2


class TestWithLength:
    def test_all_apc_layers_reused_outright(self, tiny_trained_lenet):
        """APC state numbers never involve L: the layer plans are shared."""
        plan = compile_plan(tiny_trained_lenet, _cfg(("APC", "APC", "APC"),
                                                     length=1024))
        short = plan.with_length(256)
        assert short.length == 256
        for a, b in zip(plan.layers, short.layers):
            assert a is b

    def test_mux_layers_recompiled(self, tiny_trained_lenet):
        plan = compile_plan(tiny_trained_lenet, _cfg(("MUX", "APC", "APC"),
                                                     length=1024))
        short = plan.with_length(64)
        assert short.layers[0] is not plan.layers[0]
        assert short.layers[0].n_states != plan.layers[0].n_states

    def test_raw_quantization_cached_across_lengths(self, tiny_trained_lenet):
        plan = compile_plan(tiny_trained_lenet, _cfg(("MUX", "APC", "APC"),
                                                     length=1024),
                            weight_bits=7)
        short = plan.with_length(64)
        for a, b in zip(plan.layers, short.layers):
            # raw (unscaled) quantization is length-independent: shared.
            assert a.raw_weights is b.raw_weights
            assert a.raw_bias is b.raw_bias

    def test_same_length_returns_self(self, tiny_trained_lenet):
        plan = compile_plan(tiny_trained_lenet, _cfg(("MUX", "APC", "APC")))
        assert plan.with_length(plan.length) is plan

    def test_retarget_matches_fresh_compile(self, tiny_trained_lenet):
        """Re-targeting must equal compiling at the new length directly."""
        cfg = _cfg(("MUX", "APC", "APC"), length=1024)
        retargeted = compile_plan(tiny_trained_lenet, cfg,
                                  weight_bits=7).with_length(128)
        fresh = compile_plan(tiny_trained_lenet,
                             _cfg(("MUX", "APC", "APC"), length=128),
                             weight_bits=7)
        for a, b in zip(retargeted.layers, fresh.layers):
            assert a.n_states == b.n_states
            np.testing.assert_array_equal(a.weights, b.weights)
            np.testing.assert_array_equal(a.dense_weights, b.dense_weights)


class TestSharedIndices:
    def test_pool_windows_cover_grid(self):
        win = pool_window_indices(6, 6)
        assert sorted(win.reshape(-1).tolist()) == list(range(144))

    def test_pool_windows_cached_and_readonly(self):
        a = pool_window_indices(4, 4)
        assert a is pool_window_indices(4, 4)
        assert not a.flags.writeable

    def test_patch_index_channel_major(self):
        idx = conv_patch_index(2, 8, 8, 5)
        assert idx.shape == (16, 50)
        # second channel's taps are offset by one channel plane (64)
        np.testing.assert_array_equal(idx[:, 25:], idx[:, :25] + 64)


class TestNormalizeWeightBits:
    def test_forms(self):
        assert normalize_weight_bits(None) == (None,) * 4
        assert normalize_weight_bits(7) == (7, 7, 7, 7)
        assert normalize_weight_bits((7, 7, 6)) == (7, 7, 6, 6)
        assert normalize_weight_bits((7, 7, 6, 5)) == (7, 7, 6, 5)

    def test_rejects_bad_tuple(self):
        with pytest.raises(ValueError, match="weight_bits"):
            normalize_weight_bits((7, 7))


class TestCachedThreadSafety:
    def test_concurrent_cached_calls_invoke_factory_once(
            self, tiny_trained_lenet):
        """Workers sharing a plan must not race the memoized artifacts."""
        import threading
        import time

        from repro.core.config import NetworkConfig, PoolKind

        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 32,
                                       ("APC", "APC", "APC"))
        plan = compile_plan(tiny_trained_lenet, cfg)
        calls = []
        results = [None] * 8
        barrier = threading.Barrier(8)

        def slow_factory():
            calls.append(threading.get_ident())
            time.sleep(0.02)  # widen the race window
            return object()

        def hit(i):
            barrier.wait()
            results[i] = plan.cached("artifact", slow_factory)

        threads = [threading.Thread(target=hit, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert all(r is results[0] for r in results)

    def test_reentrant_factory_does_not_deadlock(self, tiny_trained_lenet):
        from repro.core.config import NetworkConfig, PoolKind

        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 32,
                                       ("APC", "APC", "APC"))
        plan = compile_plan(tiny_trained_lenet, cfg)
        value = plan.cached("outer",
                            lambda: plan.cached("inner", lambda: 41) + 1)
        assert value == 42

    def test_with_length_starts_fresh_derived_store(
            self, tiny_trained_lenet):
        """Re-targeted plans share weights but never derived artifacts."""
        from repro.core.config import NetworkConfig, PoolKind

        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 32,
                                       ("APC", "APC", "APC"))
        plan = compile_plan(tiny_trained_lenet, cfg)
        plan.cached("artifact", lambda: "at-32")
        retargeted = plan.with_length(64)
        assert retargeted.cached("artifact", lambda: "at-64") == "at-64"


class TestPackUnpack:
    """pack_plan/unpack_plan: the serve tier's shared-memory plan format."""

    def _round_trip(self, model, cfg, weight_bits=None):
        from repro.engine.plan import pack_plan, unpack_plan

        plan = compile_plan(model, cfg, weight_bits=weight_bits)
        buf = pack_plan(plan)
        graph = build_graph(model, cfg)
        return plan, unpack_plan(graph, buf)

    def test_arrays_bit_identical_and_readonly(self, tiny_trained_lenet):
        cfg = _cfg(("MUX", "APC", "APC"), length=64)
        plan, back = self._round_trip(tiny_trained_lenet, cfg,
                                      weight_bits=7)
        assert len(back.layers) == len(plan.layers)
        for orig, hydrated in zip(plan.layers, back.layers):
            for field in type(orig).ARRAY_FIELDS:
                a, b = getattr(orig, field), getattr(hydrated, field)
                assert b.dtype == a.dtype
                np.testing.assert_array_equal(a, b)
                assert not b.flags.writeable
            assert hydrated.n_states == orig.n_states
            assert hydrated.bits == orig.bits
            assert hydrated.deficit == orig.deficit
            assert hydrated.applied_factor == orig.applied_factor
        assert back.weight_bits == plan.weight_bits

    def test_exact_inference_bit_identical(self, tiny_trained_lenet,
                                           small_dataset):
        from repro.engine import Engine

        cfg = _cfg(("MUX", "APC", "APC"), length=32)
        plan, back = self._round_trip(tiny_trained_lenet, cfg,
                                      weight_bits=7)
        _, _, x_test, _ = small_dataset
        images = x_test[:4]
        ref = Engine(plan=plan, backend="exact", seed=3).forward(images)
        got = Engine(plan=back, backend="exact", seed=3).forward(images)
        np.testing.assert_array_equal(ref, got)

    def test_unpacked_plan_retargets_without_requantizing(
            self, tiny_trained_lenet):
        """The packed raw variants seed the cache with_length draws on."""
        cfg = _cfg(("MUX", "APC", "APC"), length=64)
        plan, back = self._round_trip(tiny_trained_lenet, cfg)
        sibling = back.with_length(128)
        fresh = compile_plan(tiny_trained_lenet, _cfg(
            ("MUX", "APC", "APC"), length=128))
        for a, b in zip(sibling.layers, fresh.layers):
            np.testing.assert_array_equal(a.weights, b.weights)
        # raw variants must be the very views the buffer holds, not
        # re-quantized copies
        for orig, re in zip(back.layers, sibling.layers):
            assert re.raw_weights is orig.raw_weights
            assert re.raw_bias is orig.raw_bias

    def test_rejects_mismatched_graph(self, tiny_trained_lenet):
        from repro.engine.plan import pack_plan, unpack_plan

        cfg = _cfg(("MUX", "APC", "APC"), length=64)
        buf = pack_plan(compile_plan(tiny_trained_lenet, cfg))
        wrong_len = build_graph(tiny_trained_lenet,
                                _cfg(("MUX", "APC", "APC"), length=128))
        with pytest.raises(ValueError, match="L=64"):
            unpack_plan(wrong_len, buf)
        with pytest.raises(ValueError, match="magic"):
            unpack_plan(wrong_len, b"\x00" * 64)
