"""Backend registry, float/surrogate/noise equivalence with legacy APIs."""

import numpy as np
import pytest

from repro.core.config import NetworkConfig, PoolKind
from repro.core.fast_model import FastSCModel, PaperNoiseModel
from repro.data.synthetic_mnist import to_bipolar
from repro.engine import BACKENDS, Engine, get_backend, register_backend


@pytest.fixture(scope="module")
def sc_config():
    return NetworkConfig.from_kinds(PoolKind.MAX, 128,
                                    ("APC", "APC", "APC"))


@pytest.fixture(scope="module")
def images(small_dataset):
    _, _, x_test, _ = small_dataset
    return to_bipolar(x_test)[:32]


class TestRegistry:
    def test_builtins_registered(self):
        for name in ("exact", "surrogate", "float", "noise"):
            assert name in BACKENDS

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("quantum")

    def test_custom_backend_pluggable(self, tiny_trained_lenet, sc_config,
                                      images):
        @register_backend
        class ConstantBackend:
            name = "constant-test"

            def __init__(self, plan, seed=0):
                self.units = plan.layers[-1].units

            def forward(self, imgs):
                out = np.zeros((len(imgs), self.units))
                out[:, 3] = 1.0
                return out

        try:
            engine = Engine(tiny_trained_lenet, sc_config,
                            backend="constant-test")
            assert (engine.predict(images[:4]) == 3).all()
        finally:
            BACKENDS.pop("constant-test", None)

    def test_nameless_backend_rejected(self):
        with pytest.raises(ValueError, match="name"):
            register_backend(object)


class TestFloatBackend:
    def test_matches_software_model(self, tiny_trained_lenet, sc_config,
                                    images):
        """The float backend is the software baseline: same predictions
        as the trained network's own forward pass."""
        engine = Engine(tiny_trained_lenet, sc_config, backend="float")
        np.testing.assert_array_equal(engine.predict(images),
                                      tiny_trained_lenet.predict(
                                          images))

    def test_logits_close_to_model(self, tiny_trained_lenet, sc_config,
                                   images):
        engine = Engine(tiny_trained_lenet, sc_config, backend="float")
        np.testing.assert_allclose(
            engine.forward(images),
            tiny_trained_lenet.forward(images), atol=1e-9)

    def test_deterministic(self, tiny_trained_lenet, sc_config, images):
        engine = Engine(tiny_trained_lenet, sc_config, backend="float")
        np.testing.assert_array_equal(engine.forward(images),
                                      engine.forward(images))


class TestSurrogateBackend:
    def test_facade_equivalence(self, tiny_trained_lenet, sc_config,
                                images):
        """FastSCModel is now a facade: direct engine use must agree."""
        facade = FastSCModel(tiny_trained_lenet, sc_config, seed=4,
                             samples=120, noisy=True)
        direct = Engine(tiny_trained_lenet, sc_config, backend="surrogate",
                        seed=4, samples=120, noisy=True)
        np.testing.assert_allclose(facade.forward(images),
                                   direct.forward(images))

    def test_noiseless_deterministic(self, tiny_trained_lenet, sc_config,
                                     images):
        a = Engine(tiny_trained_lenet, sc_config, backend="surrogate",
                   seed=0, samples=120, noisy=False)
        b = Engine(tiny_trained_lenet, sc_config, backend="surrogate",
                   seed=0, samples=120, noisy=False)
        np.testing.assert_allclose(a.forward(images), b.forward(images))

    def test_curves_cached_on_plan(self, tiny_trained_lenet, sc_config):
        plan = Engine(tiny_trained_lenet, sc_config, backend="surrogate",
                      seed=0, samples=120).plan
        first = Engine(backend="surrogate", plan=plan, seed=0,
                       samples=120).backend.calibrations
        second = Engine(backend="surrogate", plan=plan, seed=0,
                        samples=120).backend.calibrations
        assert first is second


class TestNoiseBackend:
    def test_facade_equivalence(self, tiny_trained_lenet, sc_config,
                                images):
        facade = PaperNoiseModel(tiny_trained_lenet, sc_config, seed=4,
                                 samples=48)
        direct = Engine(tiny_trained_lenet, sc_config, backend="noise",
                        seed=4, samples=48)
        np.testing.assert_allclose(facade.forward(images),
                                   direct.forward(images))

    def test_sigmas_exposed(self, tiny_trained_lenet, sc_config):
        engine = Engine(tiny_trained_lenet, sc_config, backend="noise",
                        seed=0, samples=48)
        assert len(engine.backend.stage_sigmas) == 3
        assert all(s >= 0 for s in engine.backend.stage_sigmas)


class TestEngineApi:
    def test_needs_model_or_plan(self, sc_config):
        with pytest.raises(ValueError, match="plan"):
            Engine(config=sc_config)

    def test_plan_shared_across_backends(self, tiny_trained_lenet,
                                         sc_config, images):
        """One compiled plan drives every backend family."""
        plan = Engine(tiny_trained_lenet, sc_config,
                      backend="float").plan
        engines = {}
        for name in ("float", "noise", "exact"):
            opts = {"samples": 48} if name == "noise" else {}
            engines[name] = Engine(backend=name, plan=plan, seed=0, **opts)
            assert engines[name].plan is plan
        out = engines["exact"].predict(images[:2])
        assert out.shape == (2,)

    def test_error_rate_max_images(self, tiny_trained_lenet, sc_config,
                                   images, small_dataset):
        _, _, _, y_test = small_dataset
        engine = Engine(tiny_trained_lenet, sc_config, backend="float")
        err = engine.error_rate(images, y_test[:len(images)], max_images=8)
        assert 0.0 <= err <= 100.0
