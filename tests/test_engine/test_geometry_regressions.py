"""Regression tests for the shape/geometry bugs fixed in the
composite-scene PR.

Each test reproduces a latent defect that the tiled-scene workload
exposed — it fails against the pre-fix code and pins the fixed
behaviour:

* ``as_image_batch`` rejected a single multi-channel NCHW image even
  when its shape *was* the plan's exact ``(channels, h, w)`` input
  geometry (the 3-D else-branch reshaped the channel axis into a fake
  batch axis);
* ``as_image_batch`` crashed on an empty batch with numpy's internal
  "cannot reshape array of size 0" instead of returning a ``(0,
  pixels)`` batch — ``Engine.predict`` already anticipated empty
  batches downstream but never got there;
* ``input_geometry`` (and through it ``build_graph`` and the serving
  resolver) raised a raw ``IndexError`` for a 1-element ``input_hw``,
  silently truncated fractional grids, and let zero/negative grids
  through to a misleading dense-feature mismatch several layers later;
* ``model_digest`` excluded the input geometry, so two models with
  identical parameters but different claimed ``input_hw`` shared a
  digest — and therefore could share pooled plans/engines, violating
  the pool's keying contract;
* a non-numeric request payload escaped ``RequestResolver.as_images``
  as a ``TypeError``, which the HTTP layer maps to 500 instead of the
  400 every other malformed payload gets.
"""

import numpy as np
import pytest

from repro.core.config import NetworkConfig, resolve_pooling
from repro.engine import Engine, build_graph, compile_plan
from repro.engine.engine import as_image_batch
from repro.nn.activations import Tanh
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense
from repro.nn.module import Flatten, Sequential
from repro.nn.pool import MaxPool2D
from repro.nn.zoo import build_zoo_model, input_geometry, model_digest

APC2 = NetworkConfig.from_kinds(resolve_pooling("max"), 32, ("APC", "APC"))
APC1 = NetworkConfig.from_kinds(resolve_pooling("max"), 32, ("APC",))


def rect_conv_model(channels: int = 1, input_hw=(12, 20)) -> Sequential:
    """A small conv stack over a rectangular (and optionally
    multi-channel) input grid: conv5 -> pool2 -> dense."""
    h, w = input_hw
    ch, cw = h - 4, w - 4
    model = Sequential([
        Conv2D(channels, 4, 5, seed=0),
        MaxPool2D(2),
        Tanh(),
        Flatten(),
        Dense(4 * (ch // 2) * (cw // 2), 10, seed=1),
    ])
    model.input_hw = input_hw
    return model


class TestSingleImageChannelAxis:
    """A single NCHW image matching the plan's exact input shape must be
    accepted — for any channel count, not just channels == 1."""

    def test_multichannel_single_image_accepted(self):
        flat = as_image_batch(np.zeros((3, 8, 10)), shape=(3, 8, 10))
        assert flat.shape == (1, 240)

    def test_multichannel_single_matches_flat(self):
        rng = np.random.default_rng(0)
        img = rng.uniform(-1, 1, size=(3, 8, 10))
        a = as_image_batch(img, shape=(3, 8, 10))
        b = as_image_batch(img.reshape(-1), shape=(3, 8, 10))
        np.testing.assert_array_equal(a, b)

    def test_through_engine_predict(self):
        model = rect_conv_model(channels=2)
        plan = compile_plan(build_graph(model, APC1))
        engine = Engine(plan=plan, backend="float")
        rng = np.random.default_rng(1)
        img = rng.uniform(-1, 1, size=(2, 12, 20))
        single = engine.predict(img)
        flat = engine.predict(img.reshape(-1))
        np.testing.assert_array_equal(single, flat)

    def test_wrong_sized_batch_still_rejected(self):
        # The pre-fix behaviour for (c, h, w) arrays was the batch
        # branch; the fix must not regress genuine batch validation.
        with pytest.raises(ValueError, match="expected 240-pixel"):
            as_image_batch(np.zeros((5, 8, 10)), shape=(3, 8, 10))


class TestEmptyBatch:
    """An empty batch is a valid request for zero predictions, not a
    numpy reshape crash."""

    def test_as_image_batch_empty(self):
        flat = as_image_batch(np.empty((0, 240)), shape=(3, 8, 10))
        assert flat.shape == (0, 240)

    def test_engine_predict_empty(self):
        model = build_zoo_model("mlp")
        plan = compile_plan(build_graph(model, APC2))
        engine = Engine(plan=plan, backend="float")
        preds = engine.predict(np.empty((0, 784)))
        assert preds.shape == (0,)
        assert preds.dtype == np.int64


class TestInputGeometryValidation:
    """input_hw must be validated where it enters the system — a clean
    ValueError with the offending value, not an IndexError three layers
    later or a silently truncated grid."""

    def test_short_tuple_is_value_error(self):
        model = build_zoo_model("mlp")
        with pytest.raises(ValueError, match="input_hw"):
            build_graph(model, APC2, input_hw=(28,))

    def test_zero_dimension_rejected(self):
        model = build_zoo_model("mlp")
        with pytest.raises(ValueError, match="input_hw"):
            build_graph(model, APC2, input_hw=(0, 28))

    def test_negative_dimension_rejected(self):
        model = build_zoo_model("mlp")
        with pytest.raises(ValueError, match="input_hw"):
            input_geometry(model, (-4, 28))

    def test_fractional_dimension_rejected(self):
        # 28.5 used to truncate silently to 28.
        model = build_zoo_model("mlp")
        with pytest.raises(ValueError, match="input_hw"):
            input_geometry(model, (28.5, 28))

    def test_model_attribute_validated_too(self):
        model = build_zoo_model("mlp")
        model.input_hw = (28,)
        with pytest.raises(ValueError, match="input_hw"):
            input_geometry(model)

    def test_valid_rectangular_still_accepted(self):
        model = rect_conv_model()
        graph = build_graph(model, APC1)
        assert graph.input_shape == (1, 12, 20)


class TestModelDigestGeometry:
    """Two models with identical parameters but different claimed input
    geometry must not share a digest (the pool keys plans on it)."""

    def test_input_hw_changes_digest(self):
        a = build_zoo_model("mlp")
        b = build_zoo_model("mlp")
        b.input_hw = (16, 49)  # same 784 pixels, different geometry
        assert model_digest(a) != model_digest(b)

    def test_same_geometry_same_digest(self):
        a = build_zoo_model("mlp")
        b = build_zoo_model("mlp")
        assert model_digest(a) == model_digest(b)

    def test_explicit_default_matches_implicit(self):
        # Setting input_hw to the default must not re-key every plan.
        a = build_zoo_model("mlp")
        b = build_zoo_model("mlp")
        b.input_hw = (28, 28)
        assert model_digest(a) == model_digest(b)


class TestResolverPayload400:
    """Any malformed payload through the resolver is a ValueError (the
    HTTP layer's 400 class) — including ones numpy raises TypeError
    for."""

    def test_non_numeric_payload_is_value_error(self):
        from repro.serve.service import RequestResolver
        model = build_zoo_model("mlp")
        resolver = RequestResolver({"mlp": model}, default_model="mlp")
        with pytest.raises(ValueError, match="payload"):
            resolver.as_images({"not": "pixels"}, model="mlp")
