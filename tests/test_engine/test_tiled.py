"""Tests for tiled scene inference.

The two load-bearing claims:

* every window's logits are bit-identical to a dedicated single-window
  run through a freshly constructed same-seed engine (batching windows
  is a throughput optimization, never a numerics change);
* a whole scene run reuses one pooled compiled plan — zero additional
  compiles after the first window.
"""

import numpy as np
import pytest

from repro.core.config import NetworkConfig, resolve_pooling
from repro.data.scenes import SceneGenerator
from repro.data.synthetic_mnist import to_bipolar
from repro.engine import Engine, build_graph, compile_plan
from repro.engine.tiled import (
    TiledInference,
    extract_windows,
    reduce_scene,
    window_boxes,
    window_origins,
)

APC3 = NetworkConfig.from_kinds(resolve_pooling("max"), 32,
                                ("APC", "APC", "APC"))


class TestWindowOrigins:
    def test_exact_cover(self):
        assert window_origins(56, 28, 28) == (0, 28)

    def test_edge_aligned_when_stride_does_not_divide(self):
        # 0, 20 then clamp the last window to 28 so the far edge is seen
        assert window_origins(56, 28, 20) == (0, 20, 28)

    def test_window_equals_span(self):
        assert window_origins(28, 28, 7) == (0,)

    def test_window_larger_than_span_rejected(self):
        with pytest.raises(ValueError, match="span"):
            window_origins(20, 28, 7)

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            window_origins(56, 28, 0)

    def test_boxes_row_major(self):
        boxes = window_boxes((56, 42), (28, 28), 14)
        assert boxes[0] == (0, 0, 28, 28)
        assert len(boxes) == 3 * 2
        # row-major: left varies fastest
        assert boxes[1] == (0, 14, 28, 28)

    def test_extract_windows_content(self):
        rng = np.random.default_rng(0)
        canvas = rng.uniform(0, 1, size=(56, 56))
        windows, boxes = extract_windows(canvas, (28, 28), 28)
        assert windows.shape == (4, 28, 28)
        for win, (t, l, h, w) in zip(windows, boxes):
            np.testing.assert_array_equal(win, canvas[t:t + h, l:l + w])


class TestReduceScene:
    def test_grid_picks_exact_cell_windows(self):
        boxes = window_boxes((56, 56), (28, 28), 28)
        logits = np.zeros((4, 10))
        for i in range(4):
            logits[i, i + 3] = 1.0  # window i votes class i+3
        cells = list(boxes)  # cells coincide with windows
        preds, used = reduce_scene("grid", cells, boxes, logits)
        assert list(preds) == [3, 4, 5, 6]
        assert used == (0, 1, 2, 3)

    def test_margin_reduction_picks_most_confident_window(self):
        boxes = window_boxes((56, 56), (28, 28), 28)
        logits = np.full((4, 10), 0.1)
        logits[1, 7] = 3.0   # decisive window
        logits[2, 2] = 0.5   # weak margin
        preds, used = reduce_scene("translated", [(10, 10, 28, 28)],
                                   boxes, logits)
        assert list(preds) == [7]
        assert used == (1,)

    def test_margin_tie_breaks_to_first_window(self):
        boxes = window_boxes((56, 28), (28, 28), 28)
        logits = np.zeros((2, 10))
        logits[0, 4] = logits[1, 9] = 1.0  # identical margins
        preds, used = reduce_scene("cluttered", [(0, 0, 28, 28)],
                                   boxes, logits)
        assert used == (0,)
        assert list(preds) == [4]

    def test_logit_shape_mismatch_rejected(self):
        boxes = window_boxes((56, 56), (28, 28), 28)
        with pytest.raises(ValueError, match="logits"):
            reduce_scene("grid", [boxes[0]], boxes, np.zeros((3, 10)))


class TestBitIdentity:
    """Tiled exact inference must match dedicated per-window runs
    bit-for-bit."""

    @pytest.fixture(scope="class")
    def plan(self, tiny_trained_lenet):
        return compile_plan(build_graph(tiny_trained_lenet, APC3))

    def test_exact_windows_match_fresh_engines(self, plan):
        scene = SceneGenerator(seed=3).translated(index=0,
                                                  canvas_hw=(42, 42))
        tiler = TiledInference(Engine(plan=plan, backend="exact", seed=5),
                               stride=14)
        boxes, logits = tiler.window_logits(scene.canvas)
        assert len(boxes) == 4
        for i, (t, l, h, w) in enumerate(boxes):
            window = to_bipolar(scene.canvas[t:t + h, l:l + w])
            fresh = Engine(plan=plan, backend="exact", seed=5)
            np.testing.assert_array_equal(fresh.forward(window)[0],
                                          logits[i])

    def test_infer_preds_consistent_with_logits(self, plan):
        scene = SceneGenerator(seed=1).grid(index=0, rows=1, cols=2)
        tiler = TiledInference(Engine(plan=plan, backend="exact", seed=0))
        result = tiler.infer(scene)
        assert result.cell_preds.shape == (2,)
        np.testing.assert_array_equal(
            result.cell_preds,
            result.window_preds[list(result.cell_windows)])


class TestTiledGrid:
    def test_grid_predictions_match_direct_cell_predict(
            self, tiny_trained_lenet):
        """With stride == tile, grid windows ARE the cells — tiled
        predictions must equal Engine.predict on the cell tiles."""
        engine = Engine(tiny_trained_lenet, APC3, backend="float")
        scene = SceneGenerator(seed=0).grid(index=0, rows=2, cols=2)
        result = TiledInference(engine).infer(scene)
        tiles = np.stack([
            to_bipolar(scene.canvas[t:t + h, l:l + w])
            for t, l, h, w in (c.box for c in scene.cells)])
        direct = engine.predict(tiles)
        np.testing.assert_array_equal(result.cell_preds, direct)
        assert result.accuracy(scene) == pytest.approx(
            float((direct == scene.labels).mean()))


class TestPlanReuse:
    def test_one_compile_per_scene_run(self, tiny_trained_lenet):
        """A multi-scene tiled run through the pool compiles exactly one
        plan and constructs exactly one engine."""
        from repro.serve.pool import EnginePool
        pool = EnginePool(tiny_trained_lenet)
        scenes = SceneGenerator(seed=2).scenes("grid", 3)
        engines = {id(pool.get(APC3, backend="float"))
                   for _ in range(len(scenes))}
        assert len(engines) == 1
        tiler = TiledInference(pool.get(APC3, backend="float"))
        for scene in scenes:
            tiler.infer(scene)
        stats = pool.stats()
        assert stats["plans_compiled"] == 1
        assert stats["engines"] == 1
        assert stats["hits"] >= 3


class TestValidation:
    def test_multichannel_model_rejected(self):
        from repro.nn.activations import Tanh
        from repro.nn.conv import Conv2D
        from repro.nn.dense import Dense
        from repro.nn.module import Flatten, Sequential
        from repro.nn.pool import MaxPool2D
        model = Sequential([
            Conv2D(2, 4, 5, seed=0), MaxPool2D(2), Tanh(), Flatten(),
            Dense(4 * 4 * 8, 10, seed=1)])
        model.input_hw = (12, 20)
        apc1 = NetworkConfig.from_kinds(resolve_pooling("max"), 32,
                                        ("APC",))
        engine = Engine(model, apc1, backend="float")
        with pytest.raises(ValueError, match="single-channel"):
            TiledInference(engine)

    def test_bad_stride_rejected(self, tiny_trained_lenet):
        engine = Engine(tiny_trained_lenet, APC3, backend="float")
        with pytest.raises(ValueError, match="stride"):
            TiledInference(engine, stride=0)
