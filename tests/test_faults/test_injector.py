"""Unit tests for the deterministic fault-injection framework.

The framework is only as useful as its scheduling is predictable: these
tests pin the occurrence counting, hash-based rates, substring matching,
latch one-shots and the env-var arming format the recovery suites lean
on.
"""

import os
import subprocess
import sys
import time

import pytest

from repro import faults
from repro.faults import (
    ComputeFault,
    FaultInjector,
    FaultSpec,
    InjectedIOError,
)
from repro.faults.injector import KILL_EXIT_CODE, _hash_unit


class TestFaultSpec:
    def test_bad_action_rejected(self):
        with pytest.raises(ValueError, match="action"):
            FaultSpec(site="x", action="explode", hits=(1,))

    def test_empty_site_rejected(self):
        with pytest.raises(ValueError, match="site"):
            FaultSpec(site="", hits=(1,))

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(site="x", rate=1.5)

    def test_never_tripping_spec_rejected(self):
        with pytest.raises(ValueError, match="never trip"):
            FaultSpec(site="x")

    def test_parse_full_form(self):
        spec = FaultSpec.parse(
            "site=dse.evaluate, action=kill, hits=2|5, rate=0.5, "
            "match=MUX, sleep_s=0.1, max_trips=3")
        assert spec.site == "dse.evaluate"
        assert spec.action == "kill"
        assert spec.hits == (2, 5)
        assert spec.rate == 0.5
        assert spec.match == "MUX"
        assert spec.sleep_s == 0.1
        assert spec.max_trips == 3

    def test_parse_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="unknown fault spec"):
            FaultSpec.parse("site=x,hits=1,color=red")

    def test_parse_rejects_non_key_value(self):
        with pytest.raises(ValueError, match="key=value"):
            FaultSpec.parse("site=x,hits")


class TestScheduling:
    def test_hits_trip_exact_occurrences(self):
        injector = FaultInjector(FaultSpec(site="s", hits=(2, 4)))
        outcomes = []
        for _ in range(5):
            try:
                injector.fire("s")
                outcomes.append("ok")
            except ComputeFault:
                outcomes.append("boom")
        assert outcomes == ["ok", "boom", "ok", "boom", "ok"]
        assert injector.occurrences("s") == 5
        assert [t[1] for t in injector.trips] == [2, 4]

    def test_rate_one_trips_every_occurrence(self):
        injector = FaultInjector(FaultSpec(site="s", rate=1.0))
        for _ in range(3):
            with pytest.raises(ComputeFault):
                injector.fire("s")

    def test_rate_is_deterministic_in_seed(self):
        """Same seed => same trip pattern; the draw is a pure hash, so
        arming faults can never perturb any global RNG stream."""
        def pattern(seed):
            injector = FaultInjector(FaultSpec(site="s", rate=0.5),
                                     seed=seed)
            out = []
            for _ in range(32):
                try:
                    injector.fire("s")
                    out.append(0)
                except ComputeFault:
                    out.append(1)
            return out

        assert pattern(7) == pattern(7)
        assert 0 < sum(pattern(7)) < 32  # actually probabilistic
        assert _hash_unit(7, "s", 1) == _hash_unit(7, "s", 1)

    def test_match_restricts_to_label_substring(self):
        injector = FaultInjector(
            FaultSpec(site="s", rate=1.0, match="MUX-APC@128"))
        injector.fire("s", label="APC-APC@128:full")  # no match: clean
        with pytest.raises(ComputeFault):
            injector.fire("s", label="MUX-APC@128:full")

    def test_max_trips_caps_per_process(self):
        injector = FaultInjector(
            FaultSpec(site="s", rate=1.0, max_trips=2))
        for _ in range(2):
            with pytest.raises(ComputeFault):
                injector.fire("s")
        injector.fire("s")  # capped: clean
        assert len(injector.trips) == 2

    def test_latch_is_consumed_on_first_trip(self, tmp_path):
        latch = tmp_path / "latch"
        latch.touch()
        injector = FaultInjector(
            FaultSpec(site="s", rate=1.0, latch=str(latch)))
        with pytest.raises(ComputeFault):
            injector.fire("s")
        assert not latch.exists()
        injector.fire("s")  # latch gone: clean
        assert len(injector.trips) == 1

    def test_sites_are_independent(self):
        injector = FaultInjector(FaultSpec(site="a", hits=(1,)))
        injector.fire("b")
        with pytest.raises(ComputeFault):
            injector.fire("a")


class TestActions:
    def test_ioerror_action_raises_oserror_subclass(self):
        injector = FaultInjector(
            FaultSpec(site="s", action="ioerror", hits=(1,)))
        with pytest.raises(InjectedIOError) as excinfo:
            injector.fire("s", label="header")
        assert isinstance(excinfo.value, OSError)

    def test_sleep_action_delays_then_returns(self):
        injector = FaultInjector(
            FaultSpec(site="s", action="sleep", hits=(1,), sleep_s=0.05))
        start = time.monotonic()
        injector.fire("s")
        assert time.monotonic() - start >= 0.04

    def test_kill_action_exits_with_marker_code(self):
        """``kill`` dies like a segfault — no cleanup, distinctive code."""
        code = (
            "from repro.faults import FaultInjector, FaultSpec, install, "
            "fire\n"
            "install(FaultInjector(FaultSpec(site='s', action='kill', "
            "hits=(1,))))\n"
            "fire('s')\n"
            "print('unreachable')\n")
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": os.pathsep.join(
                     filter(None, ["src",
                                   os.environ.get("PYTHONPATH", "")]))},
            cwd=os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__)))))
        assert proc.returncode == KILL_EXIT_CODE
        assert "unreachable" not in proc.stdout


class TestInstallation:
    def test_fire_is_noop_without_injector(self):
        assert faults.active() is None
        faults.fire("anything", label="x")  # must not raise

    def test_armed_installs_and_uninstalls(self):
        with faults.armed(FaultSpec(site="s", hits=(1,))) as injector:
            assert faults.active() is injector
            with pytest.raises(ComputeFault):
                faults.fire("s")
        assert faults.active() is None

    def test_armed_uninstalls_on_error(self):
        with pytest.raises(RuntimeError, match="test body"):
            with faults.armed(FaultSpec(site="s", hits=(1,))):
                raise RuntimeError("test body")
        assert faults.active() is None


class TestEnvArming:
    def test_unset_env_installs_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert faults.maybe_install_from_env() is None
        assert faults.active() is None

    def test_env_specs_with_seed(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS",
            "seed=9; site=a,hits=1 ; site=b,action=sleep,rate=0.25")
        try:
            injector = faults.maybe_install_from_env()
            assert injector is faults.active()
            assert injector.seed == 9
            assert [s.site for s in injector.specs] == ["a", "b"]
            assert injector.specs[1].action == "sleep"
        finally:
            faults.clear()
