"""Tests for the four feature extraction blocks (Section 4.4)."""

import numpy as np
import pytest

from repro.core.feature_extraction import (
    ApcAvgBtanh,
    ApcMaxBtanh,
    FEB_CLASSES,
    MuxAvgStanh,
    MuxMaxStanh,
    make_feb,
)

ALL_KINDS = ("mux-avg", "mux-max", "apc-avg", "apc-max")


@pytest.fixture()
def window_inputs(rng):
    n = 16
    x = rng.uniform(-1, 1, (6, 4, n))
    w = rng.uniform(-1, 1, (6, 4, n))
    return x, w


class TestMakeFeb:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_registry(self, kind):
        feb = make_feb(kind, 16, 256)
        assert type(feb) is FEB_CLASSES[kind]

    def test_paper_names_accepted(self):
        assert isinstance(make_feb("MUX-Avg-Stanh", 16, 256), MuxAvgStanh)
        assert isinstance(make_feb("APC-Max-Btanh", 16, 256), ApcMaxBtanh)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="FEB kind"):
            make_feb("or-avg", 16, 256)


class TestStateSelection:
    def test_defaults_use_paper_equations(self):
        assert MuxAvgStanh(16, 1024).n_states == 10   # equation (1)
        assert MuxMaxStanh(16, 1024).n_states == 14   # equation (2)
        assert ApcAvgBtanh(16, 1024).n_states == 8    # equation (3)
        assert ApcMaxBtanh(16, 1024).n_states == 32   # original (2N)

    def test_override(self):
        assert MuxAvgStanh(16, 1024, n_states=20).n_states == 20


class TestReference:
    def test_avg_reference(self, window_inputs):
        x, w = window_inputs
        feb = ApcAvgBtanh(16, 256)
        expected = np.tanh((x * w).sum(-1).mean(-1))
        np.testing.assert_allclose(feb.reference(x, w), expected)

    def test_max_reference(self, window_inputs):
        x, w = window_inputs
        feb = ApcMaxBtanh(16, 256)
        expected = np.tanh((x * w).sum(-1).max(-1))
        np.testing.assert_allclose(feb.reference(x, w), expected)


class TestForward:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_output_in_range(self, kind, window_inputs):
        x, w = window_inputs
        feb = make_feb(kind, 16, 256, seed=1)
        out = feb.forward(x, w)
        assert out.shape == (6,)
        assert np.all(np.abs(out) <= 1.0)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_tracks_reference_sign_when_saturated(self, kind, rng):
        """Strongly positive/negative receptive fields must come out
        with the right sign from every design."""
        n = 16
        x = np.abs(rng.uniform(0.3, 1, (2, 4, n)))
        w = np.ones((2, 4, n)) * 0.8
        w[1] *= -1
        feb = make_feb(kind, n, 1024, seed=2)
        out = feb.forward(x, w)
        assert out[0] > 0.2
        assert out[1] < -0.2

    def test_apc_max_most_accurate(self, rng):
        """Section 6.1's headline ordering at moderate n and long L."""
        n, L = 16, 1024
        x = rng.uniform(-1, 1, (24, 4, n))
        w = rng.uniform(-1, 1, (24, 4, n))
        errs = {}
        for kind in ALL_KINDS:
            feb = make_feb(kind, n, L, seed=3)
            errs[kind] = np.abs(feb.forward(x, w)
                                - feb.reference(x, w)).mean()
        assert errs["apc-max"] < errs["mux-avg"]
        assert errs["apc-avg"] < errs["mux-avg"]

    def test_wrong_window_shape_rejected(self):
        feb = make_feb("apc-avg", 16, 256)
        with pytest.raises(ValueError, match="shape"):
            feb.forward(np.zeros((3, 16)), np.zeros((3, 16)))

    def test_forward_stream_length(self, window_inputs):
        x, w = window_inputs
        feb = make_feb("mux-avg", 16, 256, seed=0)
        stream = feb.forward_stream(x, w)
        assert stream.length == 256
        assert stream.shape == (6,)

    def test_exact_counter_option(self, window_inputs):
        x, w = window_inputs
        approx = ApcAvgBtanh(16, 256, seed=0, approximate=True)
        exact = ApcAvgBtanh(16, 256, seed=0, approximate=False)
        # Same seeds → same streams; outputs should be near identical.
        diff = np.abs(approx.forward(x, w) - exact.forward(x, w))
        assert diff.mean() < 0.1
