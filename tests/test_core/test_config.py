"""Tests for the configuration objects and Table 6 data."""

import pytest

from repro.core.config import (
    FEBKind,
    LayerConfig,
    NetworkConfig,
    PoolKind,
    TABLE6_CONFIGS,
)


class TestLayerConfig:
    def test_feb_key(self):
        layer = LayerConfig(FEBKind.MUX)
        assert layer.feb_key(PoolKind.AVG) == "mux-avg"
        assert layer.feb_key(PoolKind.MAX) == "mux-max"


class TestNetworkConfig:
    def test_from_kinds(self):
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 512,
                                       ("MUX", "APC", "APC"), name="t")
        assert cfg.layers[0].ip_kind is FEBKind.MUX
        assert cfg.layers[2].ip_kind is FEBKind.APC

    def test_describe(self):
        cfg = NetworkConfig.from_kinds(PoolKind.AVG, 256,
                                       ("MUX", "APC", "APC"), name="No.11")
        assert "No.11" in cfg.describe()
        assert "MUX-APC-APC" in cfg.describe()

    def test_empty_layers_rejected(self):
        with pytest.raises(ValueError, match="at least 1"):
            NetworkConfig(PoolKind.MAX, 256, ())

    def test_arbitrary_depth_accepted(self):
        """Non-LeNet depths are legal; the graph builder validates the
        count against the model it lowers."""
        for depth in (1, 2, 4, 6):
            cfg = NetworkConfig(PoolKind.MAX, 256,
                                (LayerConfig(FEBKind.APC),) * depth)
            assert len(cfg.layers) == depth

    def test_non_layerconfig_rejected(self):
        with pytest.raises(ValueError, match="LayerConfig"):
            NetworkConfig(PoolKind.MAX, 256, ("APC", "APC", "APC"))


class TestTable6Data:
    def test_twelve_rows(self):
        assert len(TABLE6_CONFIGS) == 12

    def test_max_and_avg_halves(self):
        poolings = [cfg.pooling for cfg, _ in TABLE6_CONFIGS]
        assert poolings[:6] == [PoolKind.MAX] * 6
        assert poolings[6:] == [PoolKind.AVG] * 6

    def test_delay_consistent_with_length(self):
        """Table 6's delay column is always L × 5 ns."""
        for cfg, paper in TABLE6_CONFIGS:
            assert paper.delay_ns == cfg.length * 5

    def test_layer2_always_apc(self):
        for cfg, _ in TABLE6_CONFIGS:
            assert cfg.layers[2].ip_kind is FEBKind.APC

    def test_apc_rows_more_accurate(self):
        """Within each (pooling, L) pair, the all-APC row has lower
        reported inaccuracy."""
        for i in range(0, 12, 2):
            lighter, heavier = TABLE6_CONFIGS[i], TABLE6_CONFIGS[i + 1]
            assert (heavier[1].inaccuracy_pct < lighter[1].inaccuracy_pct)
