"""Tests for the exact bit-level SC network simulator."""

import numpy as np
import pytest

from repro.core.config import FEBKind, NetworkConfig, PoolKind
from repro.core.network import (
    SCNetwork,
    layer_gain_compensation,
    pool_window_indices,
)
from repro.data.synthetic_mnist import to_bipolar
from repro.nn.dense import Dense
from repro.nn.module import Sequential


class TestPoolWindowIndices:
    def test_two_by_two(self):
        win = pool_window_indices(1, 1)
        np.testing.assert_array_equal(win, [[0, 1, 2, 3]])

    def test_larger_grid(self):
        win = pool_window_indices(2, 2)
        # 4×4 grid, row-major: window (0,0) = positions 0,1,4,5
        np.testing.assert_array_equal(win[0], [0, 1, 4, 5])
        np.testing.assert_array_equal(win[3], [10, 11, 14, 15])

    def test_covers_all_positions(self):
        win = pool_window_indices(6, 6)
        assert sorted(win.reshape(-1).tolist()) == list(range(144))


class TestGainCompensation:
    def test_apc_layer_untouched_when_in_range(self, rng):
        w = rng.uniform(-0.3, 0.3, (4, 8))
        b = rng.uniform(-0.1, 0.1, 4)
        w2, b2, deficit, factor = layer_gain_compensation(
            w, b, FEBKind.APC, 9, 18
        )
        np.testing.assert_allclose(w2, w)
        assert deficit == pytest.approx(1.0)
        assert factor == pytest.approx(1.0)

    def test_mux_layer_scaled_up(self, rng):
        w = rng.uniform(-0.1, 0.1, (4, 24))
        b = rng.uniform(-0.05, 0.05, 4)
        w2, _, deficit, factor = layer_gain_compensation(
            w, b, FEBKind.MUX, 25, 10
        )
        assert factor > 1.0
        assert np.abs(w2).max() <= 0.97 + 1e-9

    def test_mux_target_capped(self):
        """Tiny weights: full 2n/K recovery, deficit 1."""
        w = np.full((2, 10), 0.01)
        b = np.zeros(2)
        _, _, deficit, factor = layer_gain_compensation(
            w, b, FEBKind.MUX, 10, 4
        )
        assert factor == pytest.approx(5.0)   # 2·10/4
        assert deficit == pytest.approx(1.0)

    def test_unrecoverable_deficit_reported(self):
        """Large weights cannot absorb the scaling: deficit > 1."""
        w = np.full((2, 10), 0.9)
        b = np.zeros(2)
        _, _, deficit, _ = layer_gain_compensation(
            w, b, FEBKind.MUX, 10, 4
        )
        assert deficit > 3.0

    def test_incoming_deficit_absorbed_by_weights_only(self):
        w = np.full((2, 4), 0.1)
        b = np.full(2, 0.1)
        w2, b2, deficit, _ = layer_gain_compensation(
            w, b, FEBKind.APC, 5, 10, incoming_deficit=2.0
        )
        assert np.allclose(w2, 0.2)   # × incoming deficit
        assert np.allclose(b2, 0.1)   # biases untouched for APC
        assert deficit == pytest.approx(1.0)


class TestSCNetworkConstruction:
    def test_rejects_model_config_mismatch(self):
        model = Sequential([Dense(784, 2)])
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 64,
                                       ("APC", "APC", "APC"))
        with pytest.raises(ValueError, match="layer kinds"):
            SCNetwork(model, cfg)

    def test_plans_built(self, tiny_trained_lenet):
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 64,
                                       ("MUX", "APC", "APC"))
        sc = SCNetwork(tiny_trained_lenet, cfg, seed=0)
        assert len(sc.gain_deficits) == 4
        names = [p.name for p in sc._plans]
        assert names == ["Layer0", "Layer1", "Layer2", "Output"]
        assert sc._plans[0].n_inputs == 26   # 25 + bias
        assert sc._plans[2].n_inputs == 801


class TestSCNetworkInference:
    @pytest.fixture(scope="class")
    def sc_setup(self, tiny_trained_lenet, small_dataset):
        _, _, x_test, y_test = small_dataset
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 256,
                                       ("APC", "APC", "APC"))
        sc = SCNetwork(tiny_trained_lenet, cfg, seed=0)
        return sc, to_bipolar(x_test), y_test

    def test_forward_image_shape(self, sc_setup):
        sc, x, _ = sc_setup
        logits = sc.forward_image(x[0])
        assert logits.shape == (10,)

    def test_deterministic(self, tiny_trained_lenet, small_dataset):
        _, _, x_test, _ = small_dataset
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 128,
                                       ("APC", "APC", "APC"))
        a = SCNetwork(tiny_trained_lenet, cfg, seed=7).forward_image(
            to_bipolar(x_test)[0])
        b = SCNetwork(tiny_trained_lenet, cfg, seed=7).forward_image(
            to_bipolar(x_test)[0])
        np.testing.assert_allclose(a, b)

    def test_predictions_beat_chance(self, cached_lenet):
        """At L=512 the all-APC network tracks the software model
        closely (the paper's central claim for APC configurations)."""
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 512,
                                       ("APC", "APC", "APC"))
        sc = SCNetwork(cached_lenet.model, cfg, seed=0)
        x = cached_lenet.bipolar_test_images()
        err = sc.error_rate(x, cached_lenet.y_test, max_images=16)
        assert err < 40.0

    def test_rejects_out_of_range_image(self, sc_setup):
        sc, x, _ = sc_setup
        with pytest.raises(ValueError, match=r"\[-1, 1\]"):
            sc.forward_image(np.full((1, 28, 28), 2.0))

    def test_rejects_wrong_size(self, sc_setup):
        sc, _, _ = sc_setup
        with pytest.raises(ValueError, match="28"):
            sc.forward_image(np.zeros((1, 10, 10)))

    def test_weight_bits_quantization_applies(self, tiny_trained_lenet):
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 64,
                                       ("APC", "APC", "APC"))
        sc = SCNetwork(tiny_trained_lenet, cfg, seed=0, weight_bits=4)
        # 4-bit storage: every weight is a multiple of 2/16 minus 1.
        w = sc._plans[0].weights
        codes = (w + 1.0) / 2.0 * 16
        np.testing.assert_allclose(codes, np.round(codes), atol=1e-9)
