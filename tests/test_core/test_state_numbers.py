"""Tests for the state-number equations (1)-(3)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.state_numbers import (
    btanh_states_apc_avg,
    btanh_states_apc_max,
    nearest_even,
    stanh_states_mux_avg,
    stanh_states_mux_max,
)


class TestNearestEven:
    @pytest.mark.parametrize("value,expected", [
        (7.9, 8), (8.1, 8), (9.0, 10), (2.9, 2), (1.0, 2), (0.3, 2),
    ])
    def test_rounding(self, value, expected):
        assert nearest_even(value) == expected

    @given(st.floats(min_value=0.0, max_value=1e4))
    def test_always_even_and_positive(self, value):
        k = nearest_even(value)
        assert k % 2 == 0
        assert k >= 2


class TestEquation1:
    def test_hand_computed_value(self):
        """N=16, L=1024: K = 2·4 + (10·16)/(33.27·4) = 9.20 → 10."""
        assert stanh_states_mux_avg(1024, 16) == 10

    def test_grows_with_input_size(self):
        assert stanh_states_mux_avg(1024, 256) > stanh_states_mux_avg(1024, 16)

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            stanh_states_mux_avg(1024, 1)


class TestEquation2:
    def test_hand_computed_value(self):
        """N=16, L=1024: 2(4+10) − 37/4 − 16.5/log5(1024) ≈ 14.9 → 14."""
        assert stanh_states_mux_max(1024, 16) == 14

    def test_grows_with_length(self):
        assert (stanh_states_mux_max(4096, 64)
                > stanh_states_mux_max(256, 64))

    def test_minimum_two_states(self):
        # Tiny n makes the equation negative; clamp to a valid FSM.
        assert stanh_states_mux_max(256, 2) >= 2


class TestEquation3:
    def test_half_n(self):
        assert btanh_states_apc_avg(16) == 8
        assert btanh_states_apc_avg(25) == 12  # nearest even of 12.5

    def test_original_design_two_n(self):
        assert btanh_states_apc_max(16) == 32

    @given(st.integers(min_value=2, max_value=2048))
    def test_avg_smaller_than_max(self, n):
        """The averaged count stream has 4× less variance, so needs 4×
        fewer states (N/2 vs 2N)."""
        assert btanh_states_apc_avg(n) <= btanh_states_apc_max(n)
