"""Tests for the Section 6.3 holistic optimizer."""

import numpy as np
import pytest

from repro.core.config import FEBKind, PoolKind
from repro.core.optimizer import DesignPoint, HolisticOptimizer
from repro.data.cache import TrainedModel
from repro.data.synthetic_mnist import to_bipolar
from repro.nn.trainer import evaluate_error_rate


@pytest.fixture(scope="module")
def trained(tiny_trained_lenet, small_dataset):
    _, _, x_test, y_test = small_dataset
    err = evaluate_error_rate(tiny_trained_lenet, to_bipolar(x_test), y_test)
    return TrainedModel(model=tiny_trained_lenet, pooling="max",
                        x_test=x_test, y_test=y_test,
                        software_error_pct=err)


class TestHolisticOptimizer:
    def test_candidate_combos_respect_layer2_restriction(self, trained):
        opt = HolisticOptimizer(trained, eval_images=50)
        combos = opt._candidate_kind_combos()
        assert len(combos) == 4
        assert all(c[2] is FEBKind.APC for c in combos)

    def test_unrestricted_combos(self, trained):
        opt = HolisticOptimizer(trained, eval_images=50,
                                restrict_layer2_to_apc=False)
        assert len(opt._candidate_kind_combos()) == 8

    def test_evaluate_returns_design_point(self, trained):
        from repro.core.config import NetworkConfig
        opt = HolisticOptimizer(trained, eval_images=60, seed=0)
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 128,
                                       ("APC", "APC", "APC"))
        point = opt.evaluate(cfg)
        assert isinstance(point, DesignPoint)
        assert point.cost.area_mm2 > 0
        assert "err" in point.summary()

    def test_run_halves_lengths(self, trained):
        """Passing configs are re-tested at L/2 (the paper's loop)."""
        opt = HolisticOptimizer(trained, threshold_pct=100.0,
                                eval_images=40, seed=0)
        points = opt.run(max_length=128, min_length=64)
        lengths = {p.config.length for p in points}
        # With an infinite threshold everything survives both rounds.
        assert lengths == {128, 64}

    def test_strict_threshold_prunes(self, trained):
        opt = HolisticOptimizer(trained, threshold_pct=-100.0,
                                eval_images=40, seed=0)
        assert opt.run(max_length=128, min_length=64) == []

    def test_bad_evaluator_rejected(self, trained):
        with pytest.raises(ValueError, match="evaluator"):
            HolisticOptimizer(trained, evaluator="oracle")

    def test_cost_matches_static_lenet_geometry(self, trained):
        """The graph-derived cost the optimizer now uses must reproduce
        the static LENET_GEOMETRY roll-up exactly for LeNet-5."""
        from repro.core.config import NetworkConfig
        from repro.hw.network_cost import lenet_network_cost
        opt = HolisticOptimizer(trained, eval_images=40, seed=0)
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 128,
                                       ("MUX", "APC", "APC"))
        point = opt.evaluate(cfg)
        assert point.cost.row() == lenet_network_cost(
            cfg, weight_bits=opt.weight_bits).row()

    def test_pareto_front(self, trained):
        from repro.core.config import NetworkConfig
        from repro.hw.network_cost import lenet_network_cost
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 128,
                                       ("APC", "APC", "APC"))
        cost = lenet_network_cost(cfg)
        good = DesignPoint(cfg, 1.0, 0.0, cost)
        bad = DesignPoint(cfg, 5.0, 4.0, cost)
        front = HolisticOptimizer.pareto_front([good, bad])
        assert good in front and bad not in front

    def test_run_matches_run_sequential(self, trained):
        """The facade (DSE runner underneath) must reproduce the legacy
        in-process loop bit-for-bit."""
        opt = HolisticOptimizer(trained, threshold_pct=100.0,
                                eval_images=40, seed=0)
        assert (opt.run(max_length=128, min_length=64)
                == opt.run_sequential(max_length=128, min_length=64))

    def test_with_length_always_retargets_from_max_length(self, trained,
                                                          monkeypatch):
        """Regression: the halving loop once overwrote its plan cache
        with each round's (shorter) re-target, so from the third round
        on a combo re-derived from a stale shorter plan instead of the
        canonical max-length compile.  Pin that every ``with_length``
        call starts from the max-length plan."""
        from repro.engine.plan import CompiledPlan
        sources = []
        original = CompiledPlan.with_length

        def spy(self, length, name=None):
            sources.append((self.config.length, length))
            return original(self, length, name=name)

        monkeypatch.setattr(CompiledPlan, "with_length", spy)
        opt = HolisticOptimizer(trained, threshold_pct=100.0,
                                eval_images=20, seed=0)
        opt.run_sequential(max_length=256, min_length=64)
        # three halving rounds (256, 128, 64) — all re-targets must
        # originate at 256
        assert {target for _, target in sources} == {256, 128, 64}
        assert all(source == 256 for source, _ in sources)


class TestZooOptimization:
    """The Section 6.3 procedure runs over any zoo architecture."""

    @pytest.fixture(scope="class")
    def trained_mlp(self, zoo_trained, small_dataset):
        _, _, x_test, y_test = small_dataset
        model = zoo_trained["mlp"]
        err = evaluate_error_rate(model, to_bipolar(x_test), y_test)
        return TrainedModel(model=model, pooling="max", x_test=x_test,
                            y_test=y_test, software_error_pct=err,
                            model_name="mlp")

    def test_combos_follow_model_depth(self, trained_mlp):
        opt = HolisticOptimizer(trained_mlp, eval_images=40)
        combos = opt._candidate_kind_combos()
        # 2 hidden layers, last restricted to APC → MUX/APC × {APC}
        assert len(combos) == 2
        assert all(len(c) == 2 and c[-1] is FEBKind.APC for c in combos)

    def test_run_produces_costed_points(self, trained_mlp):
        opt = HolisticOptimizer(trained_mlp, threshold_pct=100.0,
                                eval_images=40, seed=0)
        points = opt.run(max_length=128, min_length=64)
        assert {p.config.length for p in points} == {128, 64}
        for p in points:
            assert len(p.config.layers) == 2
            assert p.cost.area_mm2 > 0 and p.cost.energy_uj > 0
