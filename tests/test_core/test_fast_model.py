"""Tests for the calibrated surrogate and the paper-noise evaluator."""

import numpy as np
import pytest

from repro.core.config import NetworkConfig, PoolKind
from repro.core.fast_model import (
    FastSCModel,
    FEBCalibration,
    PaperNoiseModel,
    calibrate_feb,
)
from repro.data.synthetic_mnist import to_bipolar


class TestFEBCalibration:
    def test_apply_interpolates(self):
        cal = FEBCalibration([-1.0, 0.0, 1.0], [-0.9, 0.0, 0.9],
                             [0.01, 0.01, 0.01])
        out = cal.apply(np.array([0.5]))
        assert out[0] == pytest.approx(0.45)

    def test_noise_sampled_when_rng_given(self):
        cal = FEBCalibration([-1.0, 1.0], [-0.5, 0.5], [0.3, 0.3])
        rng = np.random.default_rng(0)
        a = cal.apply(np.zeros(200), rng)
        assert a.std() > 0.1

    def test_output_clipped(self):
        cal = FEBCalibration([-1.0, 1.0], [-2.0, 2.0], [0.0, 0.0])
        out = cal.apply(np.array([-1.0, 1.0]))
        assert np.abs(out).max() <= 1.0

    def test_save_load_round_trip(self, tmp_path):
        cal = FEBCalibration([-1.0, 1.0], [-0.7, 0.7], [0.1, 0.2])
        path = tmp_path / "cal.npz"
        cal.save(path)
        loaded = FEBCalibration.load(path)
        np.testing.assert_allclose(loaded.mean, cal.mean)


class TestCalibrateFeb:
    def test_curve_is_monotone_ish(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cal = calibrate_feb("apc-max", 16, 128, samples=120, seed=0)
        # Ends of the measured transfer must bracket the middle.
        assert cal.mean[0] < cal.mean[-1]
        assert cal.mean[0] < 0 < cal.mean[-1]

    def test_fc_calibration(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cal = calibrate_feb("fc-apc", 32, 128, samples=100, seed=0)
        assert cal.mean[-1] > 0.5  # saturates positive

    def test_cache_hit(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        calibrate_feb("apc-avg", 16, 128, samples=60, seed=1)
        before = len(list(tmp_path.glob("*.npz")))
        calibrate_feb("apc-avg", 16, 128, samples=60, seed=1)
        assert len(list(tmp_path.glob("*.npz"))) == before


@pytest.fixture(scope="module")
def sc_config():
    return NetworkConfig.from_kinds(PoolKind.MAX, 128,
                                    ("APC", "APC", "APC"))


class TestFastSCModel:
    def test_error_close_to_exact_sim(self, tiny_trained_lenet,
                                      small_dataset, sc_config):
        """The surrogate must track the bit-exact simulator."""
        from repro.core.network import SCNetwork
        _, _, x_test, y_test = small_dataset
        x = to_bipolar(x_test)
        exact = SCNetwork(tiny_trained_lenet, sc_config, seed=0)
        exact_err = exact.error_rate(x, y_test, max_images=24)
        fast = FastSCModel(tiny_trained_lenet, sc_config, seed=0,
                           samples=160)
        fast_err = fast.error_rate(x[:120], y_test[:120])
        assert abs(fast_err - exact_err) < 25.0

    def test_noiseless_mode_deterministic(self, tiny_trained_lenet,
                                          small_dataset, sc_config):
        """With noise disabled, repeated evaluations are identical
        (the measured transfer curve is deterministic for one seed)."""
        _, _, x_test, _ = small_dataset
        x = to_bipolar(x_test)[:16]
        model = FastSCModel(tiny_trained_lenet, sc_config, seed=0,
                            noisy=False)
        np.testing.assert_allclose(model.forward(x), model.forward(x))
        again = FastSCModel(tiny_trained_lenet, sc_config, seed=0,
                            noisy=False)
        np.testing.assert_allclose(model.forward(x), again.forward(x))

    def test_rejects_model_config_mismatch(self, sc_config):
        from repro.nn.dense import Dense
        from repro.nn.module import Sequential
        with pytest.raises(ValueError, match="layer kinds"):
            FastSCModel(Sequential([Dense(784, 2)]), sc_config)


class TestPaperNoiseModel:
    def test_longer_streams_fewer_errors(self, tiny_trained_lenet,
                                         small_dataset):
        """Table 6's central trend under the paper's methodology."""
        _, _, x_test, y_test = small_dataset
        x = to_bipolar(x_test)
        errs = {}
        for L in (64, 512):
            cfg = NetworkConfig.from_kinds(PoolKind.MAX, L,
                                           ("APC", "APC", "APC"))
            pn = PaperNoiseModel(tiny_trained_lenet, cfg, seed=0,
                                 samples=48)
            errs[L] = pn.error_rate(x, y_test)
        assert errs[512] <= errs[64] + 2.0

    def test_sigmas_recorded_per_stage(self, tiny_trained_lenet):
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, 128,
                                       ("APC", "APC", "APC"))
        pn = PaperNoiseModel(tiny_trained_lenet, cfg, seed=0, samples=48)
        assert len(pn.stage_sigmas) == 3
        assert all(s >= 0 for s in pn.stage_sigmas)

    def test_mux_noisier_than_apc(self, tiny_trained_lenet):
        """Figure 14 through the noise lens: MUX sigma > APC sigma."""
        mux_cfg = NetworkConfig.from_kinds(PoolKind.MAX, 128,
                                           ("MUX", "APC", "APC"))
        apc_cfg = NetworkConfig.from_kinds(PoolKind.MAX, 128,
                                           ("APC", "APC", "APC"))
        mux = PaperNoiseModel(tiny_trained_lenet, mux_cfg, seed=0,
                              samples=48)
        apc = PaperNoiseModel(tiny_trained_lenet, apc_cfg, seed=0,
                              samples=48)
        assert mux.stage_sigmas[0] > apc.stage_sigmas[0]
