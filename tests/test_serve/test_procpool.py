"""Multi-process serving tier: routing, bit-identity, chaos, cleanup.

The bar carried over from the single-process tier: every exact-backend
reply is bit-identical to a dedicated single-request engine run no
matter which worker served it, no accepted request's reply is dropped
even when a worker is killed mid-flight, and shutting the facade down
leaves no shared-memory segment behind.
"""

import os
import threading

import numpy as np
import pytest

from repro.core.config import NetworkConfig, PoolKind
from repro.data.synthetic_mnist import to_bipolar
from repro.engine import Engine, build_graph, compile_plan
from repro.engine.plan import unpack_plan
from repro.serve import ProcServeFacade, QueueFull, ServiceDraining
from repro.serve.procpool import PlanArena

LENGTH = 32


def _cfg(length=LENGTH, kinds=("APC", "APC", "APC")):
    return NetworkConfig.from_kinds(PoolKind.MAX, length, kinds)


@pytest.fixture(scope="module")
def images(small_dataset):
    _, _, x_test, _ = small_dataset
    return to_bipolar(x_test)[:8].reshape(8, -1)


@pytest.fixture(scope="module")
def facade(tiny_trained_lenet):
    with ProcServeFacade(tiny_trained_lenet, procs=2, length=LENGTH,
                         max_wait_ms=1.0) as facade:
        yield facade


class TestPlanArena:
    def test_segments_hold_bit_identical_plans(self, tiny_trained_lenet):
        arena = PlanArena()
        try:
            config = _cfg()
            arena.add("default", tiny_trained_lenet, config, (None,) * 4)
            assert len(arena.segment_names()) == 1
            shm = arena._segments[0]
            graph = build_graph(tiny_trained_lenet, config)
            plan = unpack_plan(graph, shm.buf)
            fresh = compile_plan(graph)
            for a, b in zip(plan.layers, fresh.layers):
                np.testing.assert_array_equal(a.weights, b.weights)
            # release the zero-copy views before the segment closes
            del plan, a, b
        finally:
            arena.close(unlink=True)

    def test_close_unlinks_segments(self, tiny_trained_lenet):
        arena = PlanArena()
        arena.add("default", tiny_trained_lenet, _cfg(), (None,) * 4)
        paths = [f"/dev/shm/{name}" for name in arena.segment_names()]
        assert all(os.path.exists(p) for p in paths)
        arena.close(unlink=True)
        assert not any(os.path.exists(p) for p in paths)


class TestBitIdentity:
    def test_replies_match_dedicated_engine_across_specs(
            self, facade, tiny_trained_lenet, images):
        """Several specs (different seeds route to different workers):
        every reply must equal a dedicated single-request engine run."""
        specs = [{"seed": s} for s in range(4)]
        results = {}

        def go(index, spec):
            results[index] = facade.predict(images[index % len(images)],
                                            **spec)

        threads = [threading.Thread(target=go, args=(i, spec))
                   for i, spec in enumerate(specs * 2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for i, spec in enumerate(specs * 2):
            engine = Engine(tiny_trained_lenet, _cfg(), backend="exact",
                            seed=spec["seed"])
            expected = engine.predict(images[i % len(images)][None])[0]
            assert int(results[i][0]) == int(expected), \
                f"request {i} (spec {spec}) diverged from dedicated run"

    def test_batch_request_matches_per_image_dedicated_runs(
            self, facade, tiny_trained_lenet, images):
        preds = facade.predict(images[:4], seed=7)
        for img, pred in zip(images[:4], preds):
            engine = Engine(tiny_trained_lenet, _cfg(), backend="exact",
                            seed=7)
            assert int(pred) == int(engine.predict(img[None])[0])


class TestRouting:
    def test_same_spec_routes_to_one_worker(self, facade):
        key, _, _ = facade.resolver.resolve({})
        indices = {facade._route(key) for _ in range(10)}
        assert len(indices) == 1

    def test_route_is_stable_across_resolves(self, facade):
        a, _, _ = facade.resolver.resolve({"seed": 5})
        b, _, _ = facade.resolver.resolve({"seed": 5})
        assert facade._route(a) == facade._route(b)

    def test_distinct_specs_cover_both_workers(self, facade):
        indices = {facade._route(facade.resolver.resolve({"seed": s})[0])
                   for s in range(32)}
        assert indices == {0, 1}


class TestAdmissionControl:
    def test_admission_limit_refuses_with_queue_full(
            self, tiny_trained_lenet, images):
        with ProcServeFacade(tiny_trained_lenet, procs=1, length=LENGTH,
                             warm=False,
                             max_inflight_per_model=1) as facade:
            with facade._lock:
                facade._inflight_by_model["default"] = 1
            with pytest.raises(QueueFull, match="admission"):
                facade.predict(images[0])
            with facade._lock:
                facade._inflight_by_model["default"] = 0
            # below the limit requests flow again
            assert 0 <= facade.predict_one(images[0]) <= 9

    def test_bad_requests_rejected_frontend_side(self, facade, images):
        with pytest.raises(ValueError, match="unknown model"):
            facade.predict(images[0], model="nope")
        with pytest.raises(ValueError, match="unknown request fields"):
            facade.predict(images[0], bogus=1)
        # frontend rejections never consume a worker round-trip
        assert facade.stats()["service"]["errors"] >= 2


class TestWorkerChaos:
    def test_killed_worker_respawns_and_reply_arrives(
            self, tiny_trained_lenet, images, monkeypatch):
        """A worker killed mid-request is respawned and the request is
        resubmitted — the caller still gets the right answer."""
        monkeypatch.setenv(
            "REPRO_FAULTS", "site=serve.compute,action=kill,hits=1")
        facade = ProcServeFacade(tiny_trained_lenet, procs=2,
                                 length=LENGTH, max_wait_ms=1.0)
        try:
            # Workers armed the kill fault from the env at startup;
            # clear it so the *respawned* worker starts clean instead
            # of dying on the resubmitted request forever.
            monkeypatch.delenv("REPRO_FAULTS")
            pred = facade.predict_one(images[0], timeout=60.0)
            engine = Engine(tiny_trained_lenet, _cfg(), backend="exact",
                            seed=0)
            assert pred == int(engine.predict(images[0][None])[0])
            assert facade._restarts >= 1
            stats = facade.stats()
            assert stats["procs"]["restarts"] >= 1
            assert stats["procs"]["alive"] == 2
        finally:
            facade.close()

    def test_close_after_chaos_unlinks_shared_memory(
            self, tiny_trained_lenet, images, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", "site=serve.compute,action=kill,hits=1")
        facade = ProcServeFacade(tiny_trained_lenet, procs=2,
                                 length=LENGTH, max_wait_ms=1.0)
        monkeypatch.delenv("REPRO_FAULTS")
        paths = [f"/dev/shm/{name}"
                 for name in facade.arena.segment_names()]
        facade.predict_one(images[1], timeout=60.0)
        facade.close()
        assert not any(os.path.exists(p) for p in paths)


class TestDrainAndStats:
    def test_drain_refuses_new_requests(self, tiny_trained_lenet, images):
        facade = ProcServeFacade(tiny_trained_lenet, procs=2,
                                 length=LENGTH, warm=False)
        try:
            facade.predict_one(images[0])
            facade.drain()
            assert facade.draining
            with pytest.raises(ServiceDraining):
                facade.predict(images[0])
            assert facade.await_idle(timeout=5.0)
        finally:
            facade.close()

    def test_stats_aggregates_workers(self, facade, images):
        for seed in range(4):
            facade.predict_one(images[seed], seed=seed)
        stats = facade.stats()
        assert stats["procs"]["workers"] == 2
        assert stats["procs"]["alive"] == 2
        assert len(stats["workers"]) == 2
        frontend = stats["service"]["requests"]
        worker_total = sum(w["service"]["requests"]
                           for w in stats["workers"])
        # every frontend-served request ran in some worker (chaos
        # resubmissions may add to, never subtract from, the total)
        assert worker_total >= 4
        assert frontend >= 4
        assert stats["pool"]["plans"] >= 1
        assert stats["defaults"]["backend"] == "exact"

    def test_metrics_text_merges_worker_registries(self, facade, images):
        facade.predict_one(images[0])
        text = facade.metrics_text()
        assert "repro_serve_procs 2" in text
        # worker-side counters present in the merged exposition
        assert "repro_serve_requests_total" in text
        assert "repro_pool_lookups_total" in text
        # merged totals cover every worker-served request
        stats = facade.stats()
        worker_total = sum(w["service"]["requests"]
                           for w in stats["workers"])
        served = sum(
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_serve_requests_total"))
        assert served >= worker_total
