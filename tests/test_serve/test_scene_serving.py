"""Scene-mode serving: fan-out, bit-identity, pool reuse, HTTP, procs.

The acceptance claims under test:

* one scene request fans out into a coalesced window batch whose exact
  replies are bit-identical, window for window, to a dedicated
  single-window engine run — at any worker count;
* a scene run compiles exactly one plan per (model, config, bits)
  through the pool (hit-rate asserted);
* malformed scene payloads are the HTTP layer's 400 class, end to end.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.config import NetworkConfig, PoolKind
from repro.data.scenes import SceneGenerator
from repro.data.synthetic_mnist import to_bipolar
from repro.engine import Engine, TiledInference
from repro.serve import InferenceService, create_server
from repro.serve.procpool import ProcServeFacade

LENGTH = 32
CFG = NetworkConfig.from_kinds(PoolKind.MAX, LENGTH, ("APC", "APC", "APC"))


@pytest.fixture(scope="module")
def service(tiny_trained_lenet):
    svc = InferenceService(tiny_trained_lenet, backend="exact",
                          length=LENGTH, max_batch=8, max_wait_ms=10,
                          workers=2, warm=False)
    yield svc
    svc.close()


@pytest.fixture(scope="module")
def grid_scene():
    return SceneGenerator(seed=0).grid(index=0, rows=2, cols=2)


class TestServiceSceneMode:
    def test_scene_matches_dedicated_tiler_bitwise(
            self, service, tiny_trained_lenet, grid_scene):
        """Served scene logits == a dedicated single-engine tiled run,
        window for window, bit for bit."""
        served = service.predict_scene(grid_scene)
        oracle = TiledInference(
            Engine(tiny_trained_lenet, CFG, backend="exact",
                   seed=0)).infer(grid_scene)
        assert served.boxes == oracle.boxes
        np.testing.assert_array_equal(served.window_logits,
                                      oracle.window_logits)
        np.testing.assert_array_equal(served.cell_preds,
                                      oracle.cell_preds)

    def test_each_window_matches_fresh_single_window_engine(
            self, service, tiny_trained_lenet):
        scene = SceneGenerator(seed=6).translated(index=0,
                                                  canvas_hw=(42, 42))
        served = service.predict_scene(scene, stride=14)
        for i, (t, l, h, w) in enumerate(served.boxes):
            window = to_bipolar(scene.canvas[t:t + h, l:l + w])
            fresh = Engine(service.pool.model, CFG, backend="exact",
                           seed=0)
            np.testing.assert_array_equal(
                fresh.forward(window)[0], served.window_logits[i])

    def test_payload_form_equals_scene_form(self, service, grid_scene):
        from_obj = service.predict_scene(grid_scene)
        from_payload = service.predict_scene(
            json.loads(json.dumps(grid_scene.to_payload())))
        np.testing.assert_array_equal(from_obj.window_logits,
                                      from_payload.window_logits)

    def test_one_plan_compile_per_scene_run(self, tiny_trained_lenet):
        """N scenes through one service: exactly one plan compiled,
        every later lookup a hit."""
        with InferenceService(tiny_trained_lenet, backend="exact",
                              length=LENGTH, max_batch=8, max_wait_ms=5,
                              warm=False) as svc:
            scenes = SceneGenerator(seed=1).scenes("grid", 3)
            for scene in scenes:
                svc.predict_scene(scene)
            stats = svc.pool.stats()
            assert stats["plans_compiled"] == 1
            assert stats["plans_rederived"] == 0
            assert stats["engines"] == 1
            assert stats["misses"] == 1
            assert stats["hit_rate"] > 0.5

    def test_scene_and_predict_traffic_coexist(self, service,
                                               grid_scene):
        """Plain predicts interleaved with scene requests: the 5-tuple
        and 6-tuple group keys never mix, and both reply correctly."""
        cell = grid_scene.cells[0]
        top, left, h, w = cell.box
        tile = to_bipolar(grid_scene.canvas[top:top + h, left:left + w])
        results = {}

        def scene_client():
            results["scene"] = service.predict_scene(grid_scene)

        def predict_client():
            results["pred"] = service.predict_one(tile)

        threads = [threading.Thread(target=scene_client),
                   threading.Thread(target=predict_client)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # the grid cell's served prediction must agree across modes:
        # window 0 of the scene IS the tile the plain predict saw
        assert results["pred"] == int(results["scene"].cell_preds[0])

    def test_malformed_scene_is_value_error(self, service):
        with pytest.raises(ValueError, match="scene"):
            service.predict_scene({"kind": "grid"})

    def test_canvas_smaller_than_tile_rejected(self, service):
        with pytest.raises(ValueError, match="span"):
            service.predict_scene({
                "kind": "grid",
                "canvas": np.zeros((10, 10)).tolist(),
                "cells": [{"label": 1, "box": [0, 0, 5, 5]}]})

    def test_bad_stride_rejected(self, service, grid_scene):
        with pytest.raises(ValueError, match="stride"):
            service.predict_scene(grid_scene, stride="dense")


class TestHTTPSceneMode:
    @pytest.fixture(scope="class")
    def http(self, tiny_trained_lenet):
        service = InferenceService(tiny_trained_lenet, backend="exact",
                                   length=LENGTH, max_batch=8,
                                   max_wait_ms=10, warm=False)
        server = create_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever,
                                  daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        yield base, service
        server.shutdown()
        server.server_close()
        service.close()

    @staticmethod
    def _call(base, payload):
        data = json.dumps(payload).encode("utf8")
        request = urllib.request.Request(
            base + "/predict", data=data, method="POST",
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=60) as reply:
                return reply.status, json.loads(reply.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_scene_roundtrip_matches_service(self, http, grid_scene):
        base, service = http
        status, reply = self._call(
            base, {"scene": grid_scene.to_payload()})
        assert status == 200
        direct = service.predict_scene(grid_scene)
        assert reply["kind"] == "grid"
        assert reply["cell_predictions"] == [int(p)
                                             for p in direct.cell_preds]
        assert reply["window_boxes"] == [list(b) for b in direct.boxes]
        assert reply["window_predictions"] == [
            int(p) for p in direct.window_preds]

    def test_scene_with_image_is_400(self, http, grid_scene):
        base, _ = http
        status, reply = self._call(
            base, {"scene": grid_scene.to_payload(),
                   "image": [0.0] * 784})
        assert status == 400
        assert "exactly one" in reply["error"]

    def test_malformed_scene_is_400(self, http):
        base, _ = http
        status, reply = self._call(base, {"scene": {"kind": "grid"}})
        assert status == 400
        assert "scene" in reply["error"]

    def test_unknown_scene_field_is_400(self, http, grid_scene):
        base, _ = http
        status, _ = self._call(base, {"scene": grid_scene.to_payload(),
                                      "windowing": "dense"})
        assert status == 400


class TestProcSceneMode:
    def test_facade_bit_identical_to_inprocess(self, tiny_trained_lenet,
                                               grid_scene):
        """Scene replies through 2 worker processes == the in-process
        service, bit for bit (any worker count, same answer)."""
        with InferenceService(tiny_trained_lenet, backend="exact",
                              length=LENGTH, max_batch=8, max_wait_ms=5,
                              warm=False) as svc:
            expected = svc.predict_scene(grid_scene)
        with ProcServeFacade(tiny_trained_lenet, procs=2,
                             backend="exact", length=LENGTH,
                             max_batch=8, max_wait_ms=5,
                             warm=False) as facade:
            served = facade.predict_scene(grid_scene, timeout=120)
            np.testing.assert_array_equal(served.window_logits,
                                          expected.window_logits)
            np.testing.assert_array_equal(served.cell_preds,
                                          expected.cell_preds)
            assert served.boxes == expected.boxes
            # frontend validation rejects junk without crossing a
            # process boundary
            with pytest.raises(ValueError, match="scene"):
                facade.predict_scene({"kind": "grid"})
