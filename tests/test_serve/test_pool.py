"""EnginePool keying, plan reuse via with_length, LRU eviction, races.

Float-domain backends are used for cache-mechanics tests (their engines
construct in microseconds — no weight streams); one exact-backend test
covers the expensive family.
"""

import threading

import numpy as np
import pytest

from repro.core.config import NetworkConfig, PoolKind
from repro.serve.pool import EnginePool, config_digest


def _cfg(length=32, kinds=("APC", "APC", "APC"), pooling=PoolKind.MAX,
         name=""):
    return NetworkConfig.from_kinds(pooling, length, kinds, name=name)


@pytest.fixture(scope="module")
def pool_model(tiny_trained_lenet):
    return tiny_trained_lenet


class TestKeying:
    def test_digest_ignores_length_and_name(self):
        assert config_digest(_cfg(32)) == config_digest(_cfg(256))
        assert config_digest(_cfg(name="No.11")) == config_digest(_cfg())

    def test_digest_separates_design_points(self):
        assert config_digest(_cfg()) != \
            config_digest(_cfg(kinds=("MUX", "APC", "APC")))
        assert config_digest(_cfg()) != \
            config_digest(_cfg(pooling=PoolKind.AVG))

    def test_same_spec_hits_one_engine(self, pool_model):
        pool = EnginePool(pool_model)
        first = pool.get(_cfg(), backend="float")
        second = pool.get(_cfg(), backend="float")
        assert first is second
        stats = pool.stats()
        assert (stats["hits"], stats["misses"]) == (1, 1)
        assert stats["hit_rate"] == 0.5

    def test_key_fields_separate_engines(self, pool_model):
        pool = EnginePool(pool_model)
        base = pool.get(_cfg(), backend="float")
        assert pool.get(_cfg(), backend="noise") is not base
        assert pool.get(_cfg(64), backend="float") is not base
        assert pool.get(_cfg(), backend="float", seed=1) is not base
        assert pool.get(_cfg(), backend="float", weight_bits=7) is not base
        assert pool.stats()["misses"] == 5

    def test_normalized_weight_bits_share_an_engine(self, pool_model):
        """An int spec and its normalized 4-tuple are the same key."""
        pool = EnginePool(pool_model)
        a = pool.get(_cfg(), backend="float", weight_bits=7)
        b = pool.get(_cfg(), backend="float", weight_bits=(7, 7, 7, 7))
        assert a is b


class TestPlanReuse:
    def test_length_variant_rederives_not_recompiles(self, pool_model):
        pool = EnginePool(pool_model)
        a = pool.get(_cfg(32), backend="float")
        b = pool.get(_cfg(64), backend="float")
        stats = pool.stats()
        assert (stats["plans_compiled"], stats["plans_rederived"]) == (1, 1)
        # all-APC state numbers are length-free, so the layer plans — and
        # with them every quantized weight array — are shared outright
        for la, lb in zip(a.plan.layers, b.plan.layers):
            assert la is lb

    def test_quantized_raw_weights_shared_across_lengths(self, pool_model):
        """MUX state numbers depend on L (full recompile), yet raw
        quantization is still shared through the plan's raw cache."""
        pool = EnginePool(pool_model)
        kinds = ("MUX", "APC", "APC")
        a = pool.get(_cfg(32, kinds), backend="float", weight_bits=7)
        b = pool.get(_cfg(256, kinds), backend="float", weight_bits=7)
        assert a.plan is not b.plan
        for la, lb in zip(a.plan.layers, b.plan.layers):
            assert la.raw_weights is lb.raw_weights
            assert la.raw_bias is lb.raw_bias

    def test_same_backend_family_shares_one_plan(self, pool_model):
        pool = EnginePool(pool_model)
        a = pool.get(_cfg(), backend="float")
        b = pool.get(_cfg(), backend="noise")
        assert a.plan is b.plan
        assert pool.stats()["plans_compiled"] == 1


class TestEviction:
    def test_lru_evicts_oldest_engine(self, pool_model):
        pool = EnginePool(pool_model, max_engines=2)
        first = pool.get(_cfg(), backend="float", seed=0)
        pool.get(_cfg(), backend="float", seed=1)
        pool.get(_cfg(), backend="float", seed=2)  # evicts seed=0
        assert pool.stats()["evictions"] == 1
        again = pool.get(_cfg(), backend="float", seed=0)  # fresh build
        assert again is not first
        assert pool.stats()["misses"] == 4

    def test_recent_use_protects_from_eviction(self, pool_model):
        pool = EnginePool(pool_model, max_engines=2)
        first = pool.get(_cfg(), backend="float", seed=0)
        pool.get(_cfg(), backend="float", seed=1)
        pool.get(_cfg(), backend="float", seed=0)   # refresh seed=0
        pool.get(_cfg(), backend="float", seed=2)   # evicts seed=1
        assert pool.get(_cfg(), backend="float", seed=0) is first

    def test_rejects_zero_capacity(self, pool_model):
        with pytest.raises(ValueError):
            EnginePool(pool_model, max_engines=0)


class TestWarmUpAndThreads:
    def test_warm_up_preloads(self, pool_model):
        pool = EnginePool(pool_model)
        built = pool.warm_up([
            (_cfg(), "float"),
            {"config": _cfg(), "backend": "noise", "seed": 3},
        ])
        assert built == 2
        assert pool.warm_up([(_cfg(), "float")]) == 0  # already warm
        assert pool.stats()["engines"] == 2

    def test_concurrent_gets_build_once(self, pool_model):
        pool = EnginePool(pool_model)
        engines = [None] * 8
        barrier = threading.Barrier(8)

        def grab(i):
            barrier.wait()
            engines[i] = pool.get(_cfg(), backend="float")

        threads = [threading.Thread(target=grab, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(e is engines[0] for e in engines)
        assert pool.stats()["misses"] == 1

    def test_exact_engine_predicts_through_pool(self, pool_model,
                                                small_dataset):
        from repro.data.synthetic_mnist import to_bipolar
        _, _, x_test, _ = small_dataset
        images = to_bipolar(x_test)[:2].reshape(2, -1)
        pool = EnginePool(pool_model)
        engine = pool.get(_cfg(32), backend="exact")
        preds = engine.predict(images)
        assert preds.shape == (2,)
        assert pool.get(_cfg(32), backend="exact") is engine
        # per-request determinism on the shared engine
        independent = np.argmax(
            engine.backend.forward_independent(images), axis=1)
        again = np.argmax(
            engine.backend.forward_independent(images), axis=1)
        assert np.array_equal(independent, again)
