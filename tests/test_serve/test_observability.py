"""Serve-tier observability: /metrics, gauges, rolling throughput, traces.

The trace test is the PR's acceptance check: one served HTTP request
must leave a JSONL trail from which the critical path — parse → queue
wait → coalesce → compute → engine forward — reconstructs by parent
links alone.
"""

import json
import threading
import urllib.request

import pytest

from repro import obs
from repro.data.synthetic_mnist import to_bipolar
from repro.obs import trace
from repro.serve import InferenceService, create_server
from repro.serve.stats import LatencyTracker

LENGTH = 32


@pytest.fixture()
def image(small_dataset):
    _, _, x_test, _ = small_dataset
    return to_bipolar(x_test)[0].reshape(-1)


@pytest.fixture()
def observed_service(tiny_trained_lenet, tmp_path):
    """A live HTTP service with tracing armed and an isolated registry.

    Yields ``(base_url, service, records)`` where ``records()`` loads
    the JSONL trace written so far.
    """
    trace_path = tmp_path / "trace.jsonl"
    with obs.scoped_registry():
        trace.configure(str(trace_path))
        service = InferenceService(tiny_trained_lenet, backend="exact",
                                   length=LENGTH, max_batch=8,
                                   max_wait_ms=10, warm=False)
        server = create_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            yield base, service, lambda: [
                json.loads(line)
                for line in trace_path.read_text().splitlines()]
        finally:
            server.shutdown()
            server.server_close()
            service.close()
            trace.configure(None)


def _predict(base, image):
    request = urllib.request.Request(
        base + "/predict", data=json.dumps({"image": image.tolist()}).encode(),
        method="POST", headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=60) as reply:
        return json.loads(reply.read())


class TestMetricsEndpoint:
    def test_scrape_exposes_serve_series(self, observed_service, image):
        base, _, _ = observed_service
        reply = _predict(base, image)
        assert reply["prediction"] in range(10)

        with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
            assert resp.status == 200
            assert "text/plain" in resp.headers["Content-Type"]
            text = resp.read().decode()

        parsed = obs.parse(text)
        ok = parsed["repro_serve_requests_total"]["samples"][
            frozenset({("outcome", "ok")})]
        assert ok >= 1
        latency = parsed["repro_serve_latency_seconds"]["samples"][
            frozenset()]
        assert latency["count"] >= 1
        assert latency["buckets"][-1][1] == latency["count"]
        # scrape-time gauges published by export_gauges()
        assert parsed["repro_serve_queue_depth"]["kind"] == "gauge"
        assert parsed["repro_serve_inflight_batches"]["samples"][
            frozenset()] == 0
        assert parsed["repro_pool_engines"]["samples"][frozenset()] >= 1
        assert parsed["repro_serve_batches_total"]["samples"][
            frozenset()] >= 1

    def test_stats_reports_window_throughput_and_inflight(
            self, observed_service, image):
        base, _, _ = observed_service
        _predict(base, image)
        with urllib.request.urlopen(base + "/stats", timeout=10) as resp:
            stats = json.loads(resp.read())
        assert stats["service"]["throughput_rps_window"] > 0
        assert stats["service"]["throughput_window_s"] == 30.0
        assert stats["batcher"]["inflight_batches"] == 0
        assert "queued" in stats["batcher"]


class TestCriticalPathTrace:
    def test_request_trace_reconstructs_pipeline(self, observed_service,
                                                 image):
        base, _, records = observed_service
        _predict(base, image)
        recs = records()
        by_id = {r["span"]: r for r in recs}
        by_name = {}
        for r in recs:
            by_name.setdefault(r["name"], []).append(r)

        http = by_name["serve.http"][0]
        assert http["parent"] is None
        assert by_name["serve.parse"][0]["parent"] == http["span"]
        assert by_name["serve.respond"][0]["parent"] == http["span"]

        predict = by_name["serve.predict"][0]
        assert predict["parent"] == http["span"]

        # Worker-side spans stitch back to the request via the ticket's
        # captured trace token, across the thread boundary.
        queue = by_name["serve.queue"][0]
        coalesce = by_name["serve.coalesce"][0]
        compute = by_name["serve.compute"][0]
        assert queue["parent"] == predict["span"]
        assert coalesce["parent"] == predict["span"]
        assert compute["parent"] == predict["span"]
        assert compute["thread"] != predict["thread"]

        forward = by_name["engine.forward"][0]
        assert forward["parent"] == compute["span"]
        assert by_name["engine.encode"][0]["parent"] == forward["span"]
        layers = by_name["engine.layer"]
        assert all(l["parent"] == forward["span"] for l in layers)
        assert [l["tags"]["index"] for l in layers] == \
            list(range(len(layers)))

        # Every span id is unique and every parent resolves (or is root).
        assert len(by_id) == len(recs)
        for r in recs:
            assert r["parent"] is None or r["parent"] in by_id

    def test_queue_span_precedes_compute(self, observed_service, image):
        base, _, records = observed_service
        _predict(base, image)
        by_name = {r["name"]: r for r in records()}
        queue, compute = by_name["serve.queue"], by_name["serve.compute"]
        q_end = queue["ts"] + queue["dur_ms"] / 1e3
        c_end = compute["ts"] + compute["dur_ms"] / 1e3
        assert queue["ts"] <= compute["ts"] + 1e-3
        assert q_end <= c_end + 1e-3


class TestStatsCli:
    def test_stats_verb_against_live_server(self, observed_service, image,
                                            capsys):
        from repro.__main__ import _stats
        base, _, _ = observed_service
        _predict(base, image)
        assert _stats(["--url", base, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["service"]["requests"] >= 1
        assert _stats(["--url", base]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert _stats(["--url", base, "--metrics"]) == 0
        assert "repro_serve_requests_total" in capsys.readouterr().out

    def test_stats_verb_unreachable_is_error(self, capsys):
        from repro.__main__ import _stats
        assert _stats(["--url", "http://127.0.0.1:9", "--timeout",
                       "0.2"]) == 1
        assert "cannot reach" in capsys.readouterr().err


class TestRollingThroughput:
    def test_window_rate_tracks_recent_load_only(self):
        now = [1000.0]
        tracker = LatencyTracker(window_s=10.0, clock=lambda: now[0])
        for _ in range(50):
            tracker.record(0.01)
        now[0] += 5.0
        summary = tracker.summary()
        assert summary["throughput_rps_window"] == pytest.approx(10.0)
        # Lifetime rate agrees while young...
        assert summary["throughput_rps"] == pytest.approx(10.0)
        # ...but after a long quiet spell only the window rate drops to 0.
        now[0] += 100.0
        summary = tracker.summary()
        assert summary["throughput_rps_window"] == 0.0
        assert summary["throughput_rps"] == pytest.approx(50 / 105.0,
                                                          abs=1e-3)

    def test_young_server_divides_by_uptime_not_window(self):
        now = [0.0]
        tracker = LatencyTracker(window_s=30.0, clock=lambda: now[0])
        now[0] = 2.0
        for _ in range(100):
            tracker.record(0.001)
        assert tracker.summary()["throughput_rps_window"] == \
            pytest.approx(50.0)

    def test_outcomes_mirror_into_registry(self):
        with obs.scoped_registry() as registry:
            tracker = LatencyTracker()
            tracker.record(0.02)
            tracker.record_error()
            tracker.record_shed()
            fam = registry.counter("repro_serve_requests_total",
                                   labelnames=("outcome",))
            assert fam.labels(outcome="ok").value == 1
            assert fam.labels(outcome="error").value == 1
            assert fam.labels(outcome="shed").value == 1
            hist = registry.histogram("repro_serve_latency_seconds")
            assert hist._solo().count == 1  # errors/sheds have no latency
