"""HTTP round-trip tests: /predict, /healthz, /stats, error statuses.

A real ``ThreadingHTTPServer`` on an ephemeral port, driven with
``urllib`` — the same path a curl user takes.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.data.synthetic_mnist import to_bipolar
from repro.serve import InferenceService, create_server

LENGTH = 32


def _call(base, path, payload=None):
    """GET (payload None) or POST JSON; returns (status, decoded body)."""
    data = None if payload is None else json.dumps(payload).encode("utf8")
    request = urllib.request.Request(
        base + path, data=data, method="GET" if data is None else "POST",
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=60) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture(scope="module")
def http_service(tiny_trained_lenet):
    service = InferenceService(tiny_trained_lenet, backend="exact",
                               length=LENGTH, max_batch=8, max_wait_ms=10,
                               warm=False)
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield base, service
    server.shutdown()
    server.server_close()
    service.close()


@pytest.fixture(scope="module")
def images(small_dataset):
    _, _, x_test, _ = small_dataset
    return to_bipolar(x_test)[:4].reshape(4, -1)


class TestPredict:
    def test_single_image_roundtrip(self, http_service, images):
        base, service = http_service
        status, reply = _call(base, "/predict",
                              {"image": images[0].tolist()})
        assert status == 200
        assert reply["prediction"] == service.predict_one(images[0])
        assert reply["backend"] == "exact"
        assert reply["latency_ms"] > 0

    def test_nested_28x28_accepted(self, http_service, images):
        base, service = http_service
        nested = images[1].reshape(28, 28).tolist()
        status, reply = _call(base, "/predict", {"image": nested})
        assert status == 200
        assert reply["prediction"] == service.predict_one(images[1])

    def test_batch_roundtrip(self, http_service, images):
        base, service = http_service
        status, reply = _call(
            base, "/predict", {"images": [img.tolist() for img in images]})
        assert status == 200
        assert reply["predictions"] == \
            [service.predict_one(img) for img in images]

    def test_backend_and_seed_overrides(self, http_service, images):
        base, service = http_service
        status, reply = _call(base, "/predict",
                              {"image": images[0].tolist(),
                               "backend": "float", "seed": 5})
        assert status == 200
        assert reply["backend"] == "float"
        assert reply["prediction"] == service.predict_one(
            images[0], backend="float", seed=5)


class TestErrors:
    def test_unknown_backend_400(self, http_service, images):
        base, _ = http_service
        status, reply = _call(base, "/predict",
                              {"image": images[0].tolist(),
                               "backend": "warp"})
        assert status == 400
        assert "unknown backend" in reply["error"]

    def test_missing_body_400(self, http_service):
        base, _ = http_service
        status, reply = _call(base, "/predict", {})
        assert status == 400
        assert "image" in reply["error"]

    def test_image_and_images_together_400(self, http_service, images):
        base, _ = http_service
        status, reply = _call(base, "/predict",
                              {"image": images[0].tolist(),
                               "images": [images[1].tolist()]})
        assert status == 400
        assert "exactly one" in reply["error"]

    def test_wrong_shape_400(self, http_service):
        base, _ = http_service
        status, reply = _call(base, "/predict", {"image": [0.0] * 100})
        assert status == 400
        assert "784" in reply["error"]

    def test_unknown_field_400(self, http_service, images):
        base, _ = http_service
        status, reply = _call(base, "/predict",
                              {"image": images[0].tolist(), "turbo": True})
        assert status == 400
        assert "unknown request fields" in reply["error"]

    def test_unknown_path_404(self, http_service):
        base, _ = http_service
        assert _call(base, "/nope")[0] == 404
        assert _call(base, "/nope", {"x": 1})[0] == 404


class TestTelemetry:
    def test_healthz(self, http_service):
        base, _ = http_service
        status, reply = _call(base, "/healthz")
        assert status == 200
        assert reply["status"] == "ok"
        assert reply["requests"] >= 0

    def test_stats_exposes_batching_telemetry(self, http_service, images):
        base, _ = http_service
        _call(base, "/predict", {"image": images[0].tolist()})
        status, stats = _call(base, "/stats")
        assert status == 200
        assert stats["service"]["latency_ms"]["p95"] > 0
        assert "batch_size_histogram" in stats["batcher"]
        assert stats["pool"]["hit_rate"] is not None
        assert stats["defaults"]["length"] == LENGTH
