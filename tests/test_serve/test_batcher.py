"""MicroBatcher coalescing, flush policy, errors and lifecycle.

All tests use synthetic runners (no engines), so they exercise the
queueing policy in isolation and run in milliseconds.
"""

import threading
import time

import pytest

from repro.serve.batcher import MicroBatcher


class RecordingRunner:
    """Runner double: logs every (key, payloads) call; optional gate."""

    def __init__(self, gate: threading.Event = None, fail_on=None):
        self.calls = []
        self.gate = gate
        self.fail_on = fail_on
        self.entered = threading.Event()
        self.lock = threading.Lock()

    def __call__(self, key, payloads):
        self.entered.set()
        if self.gate is not None:
            self.gate.wait(timeout=10.0)
        if self.fail_on is not None and key == self.fail_on:
            raise RuntimeError(f"runner exploded on {key!r}")
        with self.lock:
            self.calls.append((key, list(payloads)))
        return [(key, p) for p in payloads]


class TestCoalescing:
    def test_requests_coalesce_into_one_batch(self):
        """Requests queued while the worker is busy form a single batch."""
        gate = threading.Event()
        runner = RecordingRunner(gate=gate)
        batcher = MicroBatcher(runner, max_batch=16, max_wait_ms=50)
        try:
            blocker = batcher.submit("w", "warm")  # occupies the worker
            tickets = [batcher.submit("g", i) for i in range(5)]
            gate.set()
            assert blocker.result(timeout=10.0) == ("w", "warm")
            assert [t.result(timeout=10.0) for t in tickets] == \
                [("g", i) for i in range(5)]
        finally:
            batcher.close()
        # first call is the lone blocker, second the coalesced five
        assert [len(p) for _, p in runner.calls] == [1, 5]
        assert batcher.stats()["batch_size_histogram"] == {"1": 1, "5": 1}

    def test_max_batch_caps_each_call(self):
        gate = threading.Event()
        runner = RecordingRunner(gate=gate)
        batcher = MicroBatcher(runner, max_batch=4, max_wait_ms=50)
        try:
            blocker = batcher.submit("w", "warm")
            tickets = [batcher.submit("g", i) for i in range(10)]
            gate.set()
            blocker.result(timeout=10.0)
            for ticket in tickets:
                ticket.result(timeout=10.0)
        finally:
            batcher.close()
        sizes = [len(p) for _, p in runner.calls[1:]]
        assert all(size <= 4 for size in sizes)
        assert sum(sizes) == 10

    def test_groups_never_mix(self):
        """A runner call only ever sees payloads of one group key."""
        gate = threading.Event()
        runner = RecordingRunner(gate=gate)
        batcher = MicroBatcher(runner, max_batch=16, max_wait_ms=20)
        try:
            blocker = batcher.submit("warm", 0)
            tickets = [batcher.submit(f"g{i % 3}", i) for i in range(9)]
            gate.set()
            blocker.result(timeout=10.0)
            for i, ticket in enumerate(tickets):
                assert ticket.result(timeout=10.0) == (f"g{i % 3}", i)
        finally:
            batcher.close()
        for key, payloads in runner.calls[1:]:
            assert all(i % 3 == int(key[1]) for i in payloads), \
                f"payloads {payloads} leaked into group {key}"
        grouped = [(key, len(p)) for key, p in runner.calls[1:]]
        assert sorted(grouped) == [("g0", 3), ("g1", 3), ("g2", 3)]

    def test_results_keep_submission_order_within_batch(self):
        gate = threading.Event()
        runner = RecordingRunner(gate=gate)
        batcher = MicroBatcher(runner, max_batch=8, max_wait_ms=50)
        try:
            blocker = batcher.submit("w", "warm")
            tickets = [batcher.submit("g", i) for i in range(6)]
            gate.set()
            blocker.result(timeout=10.0)
            assert [t.result(timeout=10.0)[1] for t in tickets] == \
                list(range(6))
        finally:
            batcher.close()


class TestFlushPolicy:
    def test_lone_request_flushes_on_quiescence_not_deadline(self):
        """A lone request is served after ~one quantum even when the
        deadline is far away (the dynamic part of the batcher)."""
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, max_batch=16, max_wait_ms=5000)
        try:
            start = time.monotonic()
            assert batcher.run("g", 1, timeout=10.0) == ("g", 1)
            elapsed = time.monotonic() - start
        finally:
            batcher.close()
        # quantum is max_wait/8 = 625ms; well under the 5s deadline
        assert elapsed < 2.5

    def test_full_batch_flushes_immediately(self):
        """max_batch queued requests launch without waiting a quantum."""
        gate = threading.Event()
        runner = RecordingRunner(gate=gate)
        batcher = MicroBatcher(runner, max_batch=3, max_wait_ms=5000)
        try:
            blocker = batcher.submit("w", "warm")
            tickets = [batcher.submit("g", i) for i in range(3)]
            gate.set()
            blocker.result(timeout=10.0)
            start = time.monotonic()
            for ticket in tickets:
                ticket.result(timeout=10.0)
            assert time.monotonic() - start < 2.5
        finally:
            batcher.close()
        assert runner.calls[1][1] == [0, 1, 2]

    def test_other_groups_traffic_does_not_defeat_quiescence(self):
        """A lone group-A request flushes after ~one quantum even while
        group-B requests keep arriving (quiescence is judged per group,
        not on global arrivals)."""
        gate = threading.Event()
        runner = RecordingRunner(gate=gate)
        batcher = MicroBatcher(runner, max_batch=16, max_wait_ms=4000)
        try:
            blocker = batcher.submit("w", "warm")
            lone = batcher.submit("a", 0)
            stop_feeding = threading.Event()

            def feed_b():
                while not stop_feeding.wait(0.03):
                    try:
                        batcher.submit("b", "noise")
                    except RuntimeError:  # closed during teardown
                        return

            feeder = threading.Thread(target=feed_b, daemon=True)
            feeder.start()
            gate.set()
            blocker.result(timeout=10.0)
            start = time.monotonic()
            assert lone.result(timeout=10.0) == ("a", 0)
            elapsed = time.monotonic() - start
            stop_feeding.set()
            feeder.join(timeout=2.0)
        finally:
            batcher.close()
        # quantum = 500ms; the old global-arrivals rule waited the
        # full 4s deadline whenever B traffic kept arriving
        assert elapsed < 2.0

    def test_zero_wait_serves_everything(self):
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, max_batch=8, max_wait_ms=0)
        try:
            assert [batcher.run("g", i, timeout=10.0)[1] for i in range(4)] \
                == list(range(4))
        finally:
            batcher.close()


class TestErrorsAndLifecycle:
    def test_runner_error_propagates_to_every_waiter(self):
        gate = threading.Event()
        runner = RecordingRunner(gate=gate, fail_on="bad")
        batcher = MicroBatcher(runner, max_batch=8, max_wait_ms=20)
        try:
            blocker = batcher.submit("ok", 0)
            doomed = [batcher.submit("bad", i) for i in range(3)]
            survivor = batcher.submit("ok", 1)
            gate.set()
            assert blocker.result(timeout=10.0) == ("ok", 0)
            assert survivor.result(timeout=10.0) == ("ok", 1)
            for ticket in doomed:
                with pytest.raises(RuntimeError, match="exploded"):
                    ticket.result(timeout=10.0)
        finally:
            batcher.close()

    def test_close_drains_pending_requests(self):
        gate = threading.Event()
        runner = RecordingRunner(gate=gate)
        batcher = MicroBatcher(runner, max_batch=8, max_wait_ms=5000)
        blocker = batcher.submit("g", "warm")
        pending = [batcher.submit("g", i) for i in range(3)]
        gate.set()
        batcher.close()
        assert blocker.result(timeout=1.0) == ("g", "warm")
        assert [t.result(timeout=1.0)[1] for t in pending] == [0, 1, 2]

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(RecordingRunner(), max_batch=4)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit("g", 1)

    def test_result_timeout_cancels_ticket(self):
        """A timed-out wait cancels the ticket (the pre-fix leak kept it
        queued and computed a result nobody would read)."""
        gate = threading.Event()
        runner = RecordingRunner(gate=gate)
        batcher = MicroBatcher(runner, max_batch=4, max_wait_ms=10)
        try:
            ticket = batcher.submit("g", 1)
            with pytest.raises(TimeoutError):
                ticket.result(timeout=0.05)
            assert ticket.cancelled
            gate.set()
            # the batcher keeps serving; repeated waits on the dead
            # ticket keep raising instead of hanging or yielding a value
            assert batcher.run("g", 2, timeout=10.0) == ("g", 2)
            with pytest.raises(TimeoutError):
                ticket.result(timeout=0.01)
        finally:
            batcher.close()

    def test_runner_result_count_mismatch_is_an_error(self):
        batcher = MicroBatcher(lambda key, payloads: [], max_batch=4,
                               max_wait_ms=5)
        try:
            with pytest.raises(RuntimeError, match="returned 0 results"):
                batcher.run("g", 1, timeout=10.0)
        finally:
            batcher.close()

    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            MicroBatcher(RecordingRunner(), max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(RecordingRunner(), max_wait_ms=-1)
        with pytest.raises(ValueError):
            MicroBatcher(RecordingRunner(), workers=0)
        with pytest.raises(ValueError):
            MicroBatcher(RecordingRunner(), max_queue=0)

    def test_full_queue_rejects_with_backpressure(self):
        from repro.serve.batcher import QueueFull

        gate = threading.Event()
        runner = RecordingRunner(gate=gate)
        batcher = MicroBatcher(runner, max_batch=2, max_wait_ms=50,
                               max_queue=3)
        try:
            blocker = batcher.submit("w", "warm")
            assert runner.entered.wait(10.0)  # worker holds the blocker
            tickets = [batcher.submit("g", i) for i in range(3)]
            with pytest.raises(QueueFull, match="queue is full"):
                batcher.submit("g", 99)
            gate.set()
            blocker.result(timeout=10.0)
            assert [t.result(timeout=10.0)[1] for t in tickets] == [0, 1, 2]
            # capacity freed up once the backlog drained
            assert batcher.run("g", 7, timeout=10.0) == ("g", 7)
        finally:
            batcher.close()

    def test_stats_shape(self):
        runner = RecordingRunner()
        batcher = MicroBatcher(runner, max_batch=4, max_wait_ms=7)
        try:
            batcher.run("g", 1, timeout=10.0)
        finally:
            batcher.close()
        stats = batcher.stats()
        assert stats["batches"] == 1
        assert stats["batched_requests"] == 1
        assert stats["mean_batch_size"] == 1.0
        assert stats["max_batch"] == 4
        assert stats["max_wait_ms"] == 7.0
