"""Chaos tests for the serving tier: faults, deadlines, cancel, drain.

The bar is quiescent consistency: every ticket resolves *exactly once*
— completed, shed, or refused, never hung — and requests untouched by a
fault stay bit-identical to a dedicated single-request engine run.
"""

import http.client
import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import faults
from repro.core.config import NetworkConfig, PoolKind
from repro.data.synthetic_mnist import to_bipolar
from repro.engine import Engine
from repro.faults import ComputeFault, FaultSpec
from repro.serve import (
    DeadlineExceeded,
    InferenceService,
    MicroBatcher,
    ServiceDraining,
    create_server,
    payload_fingerprint,
)

LENGTH = 32


@pytest.fixture(scope="module")
def images(small_dataset):
    _, _, x_test, _ = small_dataset
    return to_bipolar(x_test)[:6].reshape(6, -1)


# ----------------------------------------------------------------------
# batcher-level: bisection, deadline shed, cancellation
# ----------------------------------------------------------------------
class _GatedRunner:
    """Runner double: blocks on ``gate``, fails on payloads in ``bad``."""

    def __init__(self, gate=None, bad=()):
        self.gate = gate
        self.bad = set(bad)
        self.calls = []
        self.lock = threading.Lock()

    def __call__(self, key, payloads):
        if self.gate is not None:
            self.gate.wait(timeout=10.0)
        for p in payloads:
            if p in self.bad:
                raise RuntimeError(f"runner exploded on {p!r}")
        with self.lock:
            self.calls.append((key, list(payloads)))
        return [(key, p) for p in payloads]

    def served(self):
        """Payloads of *successful* runner calls (failed calls deliver
        no results, so they don't count toward exactly-once serving)."""
        with self.lock:
            return [p for _, batch in self.calls for p in batch]


class TestBisection:
    def test_one_bad_request_errors_alone(self):
        """A failing coalesced batch is bisected so exactly the
        offending request errors; its neighbours succeed."""
        gate = threading.Event()
        runner = _GatedRunner(gate=gate, bad={"bad"})
        batcher = MicroBatcher(runner, max_batch=8, max_wait_ms=20)
        try:
            blocker = batcher.submit("w", "warm")  # occupy the worker
            tickets = [batcher.submit("g", p)
                       for p in ("a", "b", "bad", "c", "d")]
            gate.set()
            assert blocker.result(timeout=10.0) == ("w", "warm")
            for ticket in tickets:
                if ticket.payload == "bad":
                    with pytest.raises(RuntimeError, match="exploded"):
                        ticket.result(timeout=10.0)
                else:
                    assert ticket.result(timeout=10.0) == \
                        ("g", ticket.payload)
        finally:
            batcher.close()
        stats = batcher.stats()
        assert stats["batch_failures"] >= 1
        assert stats["bisections"] >= 1
        # healthy neighbours were each served exactly once
        served = runner.served()
        for p in ("a", "b", "c", "d"):
            assert served.count(p) == 1

    def test_all_healthy_batch_never_bisects(self):
        runner = _GatedRunner()
        batcher = MicroBatcher(runner, max_batch=8, max_wait_ms=5)
        try:
            assert batcher.run("g", 1, timeout=10.0) == ("g", 1)
        finally:
            batcher.close()
        assert batcher.stats()["bisections"] == 0
        assert batcher.stats()["batch_failures"] == 0


class TestDeadlines:
    def test_expired_ticket_shed_before_compute(self):
        """A ticket whose deadline passes while queued resolves with
        DeadlineExceeded and its payload never reaches the runner."""
        gate = threading.Event()
        runner = _GatedRunner(gate=gate)
        batcher = MicroBatcher(runner, max_batch=4, max_wait_ms=10)
        try:
            blocker = batcher.submit("w", "warm")
            doomed = batcher.submit(
                "g", "doomed", deadline=time.monotonic() + 0.02)
            time.sleep(0.05)  # let the deadline lapse while queued
            gate.set()
            assert blocker.result(timeout=10.0) == ("w", "warm")
            with pytest.raises(DeadlineExceeded):
                doomed.result(timeout=10.0)
        finally:
            batcher.close()
        assert "doomed" not in runner.served()
        assert batcher.stats()["shed_deadline"] == 1

    def test_cancelled_ticket_skipped_not_computed(self):
        gate = threading.Event()
        runner = _GatedRunner(gate=gate)
        batcher = MicroBatcher(runner, max_batch=4, max_wait_ms=10)
        try:
            blocker = batcher.submit("w", "warm")
            dead = batcher.submit("g", "dead")
            assert dead.cancel()
            gate.set()
            assert blocker.result(timeout=10.0) == ("w", "warm")
            assert batcher.run("g", "live", timeout=10.0) == ("g", "live")
        finally:
            batcher.close()
        assert "dead" not in runner.served()
        assert batcher.stats()["shed_cancelled"] >= 1

    def test_service_timeout_maps_to_deadline_shed(self, images,
                                                   tiny_trained_lenet):
        """A service request timeout becomes the queue deadline: under a
        jammed queue the request sheds with DeadlineExceeded (504), and
        the shed is accounted separately from errors."""
        svc = InferenceService(tiny_trained_lenet, backend="exact",
                               length=LENGTH, max_batch=4, max_wait_ms=5,
                               workers=1, warm=False)
        try:
            with faults.armed(FaultSpec(site="serve.compute",
                                        action="sleep", sleep_s=0.5,
                                        hits=(1,))):
                jam = threading.Thread(
                    target=lambda: svc.predict_one(images[0]))
                jam.start()
                time.sleep(0.1)  # the jammer is inside its 0.5 s sleep
                with pytest.raises((DeadlineExceeded, TimeoutError)):
                    svc.predict_one(images[1], timeout=0.05)
                jam.join(timeout=10.0)
                assert not jam.is_alive()
            summary = svc.tracker.summary()
            assert summary["sheds"] == 1
            assert summary["errors"] == 0
        finally:
            svc.close()


# ----------------------------------------------------------------------
# service-level: injected compute faults under concurrent clients
# ----------------------------------------------------------------------
class TestServiceChaos:
    def test_concurrent_chaos_exactly_once_and_bit_identical(
            self, tiny_trained_lenet, images):
        """One request is poisoned by fingerprint; under concurrent
        clients it alone errors, every other response is bit-identical
        to a dedicated engine run, and no ticket hangs."""
        svc = InferenceService(tiny_trained_lenet, backend="exact",
                               length=LENGTH, max_batch=8,
                               max_wait_ms=20, workers=2, warm=False)
        model = svc.defaults["model"]
        victim = 2
        fp = payload_fingerprint(
            svc._as_images(images[victim], model=model)[0])
        outcomes = [None] * len(images)
        barrier = threading.Barrier(len(images))

        def client(i):
            barrier.wait()
            try:
                outcomes[i] = ("ok", svc.predict_one(images[i],
                                                     timeout=30.0))
            except Exception as exc:
                outcomes[i] = ("err", exc)

        try:
            with faults.armed(FaultSpec(site="serve.request",
                                        action="raise", rate=1.0,
                                        match=fp)):
                threads = [threading.Thread(target=client, args=(i,))
                           for i in range(len(images))]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=30.0)
                assert not any(t.is_alive() for t in threads)
            # exactly once: every client resolved, one way or the other
            assert all(o is not None for o in outcomes)
            kind, err = outcomes[victim]
            assert kind == "err" and isinstance(err, ComputeFault)
            cfg = NetworkConfig.from_kinds(PoolKind.MAX, LENGTH,
                                           ("APC", "APC", "APC"))
            for i, (kind, value) in enumerate(outcomes):
                if i == victim:
                    continue
                assert kind == "ok"
                oracle = int(Engine(tiny_trained_lenet, cfg,
                                    backend="exact",
                                    seed=0).predict(images[i][None])[0])
                assert value == oracle
            assert svc.batcher.stats()["batch_failures"] >= 1
        finally:
            svc.close()


# ----------------------------------------------------------------------
# drain: refuse new work, finish in-flight work
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_refuses_new_and_completes_inflight(
            self, tiny_trained_lenet, images):
        svc = InferenceService(tiny_trained_lenet, backend="exact",
                               length=LENGTH, max_batch=4, max_wait_ms=5,
                               workers=1, warm=False)
        inflight = {}

        def client():
            inflight["result"] = svc.predict_one(images[0], timeout=30.0)

        try:
            with faults.armed(FaultSpec(site="serve.compute",
                                        action="sleep", sleep_s=0.3,
                                        hits=(1,))):
                thread = threading.Thread(target=client)
                thread.start()
                time.sleep(0.1)  # the client is inside compute
                svc.drain()
                assert svc.draining
                with pytest.raises(ServiceDraining):
                    svc.predict_one(images[1])
                assert svc.await_idle(timeout=10.0)
                thread.join(timeout=10.0)
                assert not thread.is_alive()
            # the accepted request was served normally, not dropped
            cfg = NetworkConfig.from_kinds(PoolKind.MAX, LENGTH,
                                           ("APC", "APC", "APC"))
            oracle = int(Engine(tiny_trained_lenet, cfg, backend="exact",
                                seed=0).predict(images[0][None])[0])
            assert inflight["result"] == oracle
            assert svc.stats()["draining"] is True
        finally:
            svc.close()


# ----------------------------------------------------------------------
# HTTP-level: 504 deadlines, Retry-After, draining health, keep-alive
# ----------------------------------------------------------------------
def _call(base, path, payload=None):
    """GET/POST JSON; returns (status, decoded body, headers)."""
    data = None if payload is None else json.dumps(payload).encode("utf8")
    request = urllib.request.Request(
        base + path, data=data, method="GET" if data is None else "POST",
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=60) as reply:
            return reply.status, json.loads(reply.read()), reply.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers


@pytest.fixture()
def http_chaos(tiny_trained_lenet):
    service = InferenceService(tiny_trained_lenet, backend="exact",
                               length=LENGTH, max_batch=8,
                               max_wait_ms=10, warm=False)
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", service, server
    server.shutdown()
    server.server_close()
    service.close()


class TestHTTPFailureStatuses:
    def test_expired_timeout_ms_is_504(self, http_chaos, images):
        base, _, _ = http_chaos
        status, reply, _ = _call(
            base, "/predict",
            {"image": images[0].tolist(), "timeout_ms": 1e-6})
        assert status == 504
        assert "shed" in reply["error"] or "timeout" in reply["error"]

    def test_generous_timeout_ms_still_serves(self, http_chaos, images):
        base, service, _ = http_chaos
        status, reply, _ = _call(
            base, "/predict",
            {"image": images[0].tolist(), "timeout_ms": 60000})
        assert status == 200
        assert reply["prediction"] == service.predict_one(images[0])

    def test_bad_timeout_ms_is_400(self, http_chaos, images):
        base, _, _ = http_chaos
        for bad in ("soon", -5):
            status, reply, _ = _call(
                base, "/predict",
                {"image": images[0].tolist(), "timeout_ms": bad})
            assert status == 400
            assert "timeout_ms" in reply["error"]

    def test_draining_healthz_503_with_retry_after(self, http_chaos):
        base, service, _ = http_chaos
        assert _call(base, "/healthz")[0] == 200
        service.drain()
        status, reply, headers = _call(base, "/healthz")
        assert status == 503
        assert reply["status"] == "draining"
        assert headers["Retry-After"] is not None

    def test_draining_predict_503_with_retry_after(self, http_chaos,
                                                   images):
        base, service, _ = http_chaos
        service.drain()
        status, reply, headers = _call(base, "/predict",
                                       {"image": images[0].tolist()})
        assert status == 503
        assert reply["status"] == "draining"
        assert headers["Retry-After"] is not None

    def test_recoverable_4xx_keeps_connection_alive(self, http_chaos,
                                                    images):
        """A 400 whose body was read must not cost the client its
        keep-alive connection (the pre-fix behaviour closed on every
        error status)."""
        base, service, _ = http_chaos
        host, port = base.rsplit("//", 1)[1].rsplit(":", 1)
        conn = http.client.HTTPConnection(host, int(port), timeout=60)
        try:
            conn.request("POST", "/predict",
                         body=json.dumps({"image": [0.0] * 100}),
                         headers={"Content-Type": "application/json"})
            reply = conn.getresponse()
            assert reply.status == 400
            reply.read()
            assert reply.getheader("Connection") != "close"
            # the same connection serves the next (valid) request
            conn.request("POST", "/predict",
                         body=json.dumps(
                             {"image": images[0].tolist()}),
                         headers={"Content-Type": "application/json"})
            reply = conn.getresponse()
            assert reply.status == 200
            assert json.loads(reply.read())["prediction"] == \
                service.predict_one(images[0])
        finally:
            conn.close()

    def test_unread_body_still_closes_connection(self, http_chaos):
        """No/oversized body is rejected before the read; leftover bytes
        would corrupt keep-alive, so that path must still close."""
        base, _, _ = http_chaos
        host, port = base.rsplit("//", 1)[1].rsplit(":", 1)
        conn = http.client.HTTPConnection(host, int(port), timeout=60)
        try:
            conn.request("POST", "/predict", body=b"",
                         headers={"Content-Type": "application/json"})
            reply = conn.getresponse()
            assert reply.status == 400
            reply.read()
            assert reply.getheader("Connection") == "close"
        finally:
            conn.close()
