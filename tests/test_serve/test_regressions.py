"""Regression tests for the four serve-layer bugs fixed in PR 9.

Each test reproduces a latent bug found in review — it fails against the
pre-fix code and pins the fixed behaviour:

* ``LatencyTracker._window_rate`` divided by the configured ``window_s``
  even after the completion ring saturated its ``maxlen`` and no longer
  covered the whole window, underreporting sustained-load rps;
* ``InferenceService.predict`` checked ``_draining`` *before* taking the
  ``_idle`` lock, so a request racing ``drain()`` + ``await_idle()``
  could be accepted yet invisible to the idle wait;
* ``EnginePool._plan_for`` never ``move_to_end``'d the sibling plan it
  re-derives from, so a family's canonical plan could be LRU-evicted
  while it was the live re-target source;
* ``MicroBatcher._take_batch`` keyed its quiescence gather state on
  ``id(head)``, which CPython reuses after the head ticket is freed —
  aliasing a new head onto a stale gather timestamp and flushing it
  before its quantum.
"""

import itertools
import threading
import time
import types

import numpy as np
import pytest

import repro.serve.batcher as batcher_mod
import repro.serve.service as service_mod
from repro.core.config import NetworkConfig, PoolKind
from repro.data.synthetic_mnist import to_bipolar
from repro.serve import InferenceService, MicroBatcher, ServiceDraining
from repro.serve.pool import EnginePool
from repro.serve.stats import LatencyTracker


class FakeClock:
    def __init__(self, t=0.0):
        self.t = float(t)

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestWindowRateSaturation:
    """_window_rate must divide by the span the *retained* completions
    cover once the ring saturates, not the configured window_s."""

    def test_saturated_ring_uses_retained_span(self):
        clock = FakeClock()
        tracker = LatencyTracker(window=1024, window_s=30.0, clock=clock)
        maxlen = tracker._completions.maxlen
        # Server has been up far longer than the window.
        clock.advance(100.0)
        # Sustained burst at 200 rps: more completions than the ring
        # holds, all inside the 30 s window.
        for _ in range(maxlen + 200):
            clock.advance(0.005)
            tracker.record(0.001)
        rate = tracker.summary()["throughput_rps_window"]
        # The retained maxlen completions span maxlen * 5 ms; the true
        # offered rate is 200/s.  The pre-fix code divided by the full
        # 30 s window and reported ~maxlen/30 ≈ 34/s.
        assert rate == pytest.approx(200.0, rel=0.05), (
            f"window rate {rate} should track the ~200 rps burst, not "
            "divide the saturated ring by the whole window")

    def test_unsaturated_ring_keeps_window_semantics(self):
        clock = FakeClock()
        tracker = LatencyTracker(window=1024, window_s=30.0, clock=clock)
        clock.advance(100.0)
        for _ in range(60):
            clock.advance(1.0)
            tracker.record(0.001)
        # 60 completions, newest 30 within the window -> 1/s.
        assert tracker.summary()["throughput_rps_window"] == \
            pytest.approx(1.0, rel=0.05)

    def test_young_server_still_uses_uptime(self):
        clock = FakeClock()
        tracker = LatencyTracker(window=1024, window_s=30.0, clock=clock)
        for _ in range(10):
            clock.advance(0.2)
            tracker.record(0.001)
        # 10 completions over a 2 s lifetime -> 5/s, not 10/30.
        assert tracker.summary()["throughput_rps_window"] == \
            pytest.approx(5.0, rel=0.05)


class TestDrainAcceptRace:
    """A request that passed the draining check must be visible to
    await_idle() — the check and the inflight bump are atomic."""

    def test_accepted_request_never_invisible_to_await_idle(
            self, monkeypatch, tiny_trained_lenet, small_dataset):
        _, _, x_test, _ = small_dataset
        image = to_bipolar(x_test)[0].reshape(-1)
        service = InferenceService(tiny_trained_lenet, backend="float",
                                   length=32, max_wait_ms=1.0, warm=False)
        blocked = threading.Event()
        release = threading.Event()
        outcome = {}
        real_monotonic = time.monotonic
        victim_holder = {}

        def shim_monotonic():
            # Park the victim thread in the race window (its first
            # monotonic call inside predict) while the main thread
            # drains; everything else passes through.
            if (threading.current_thread() is victim_holder.get("t")
                    and not blocked.is_set()):
                blocked.set()
                release.wait(10.0)
            return real_monotonic()

        monkeypatch.setattr(
            service_mod, "time",
            types.SimpleNamespace(monotonic=shim_monotonic))

        def victim():
            try:
                outcome["result"] = service.predict(image)
            except BaseException as exc:  # noqa: BLE001 - recorded
                outcome["error"] = exc

        victim_holder["t"] = thread = threading.Thread(target=victim)
        try:
            thread.start()
            assert blocked.wait(10.0)
            service.drain()
            idle = service.await_idle(timeout=1.0)
            release.set()
            thread.join(30.0)
            assert not thread.is_alive()
            if idle:
                # If the drain path already reported idle, the racing
                # request must have been refused — an accepted request
                # served *after* await_idle returned is a dropped-reply
                # hazard on SIGTERM.
                assert isinstance(outcome.get("error"), ServiceDraining), (
                    "await_idle() reported idle while an accepted "
                    f"request was still in flight (outcome: {outcome})")
            else:
                assert service.await_idle(timeout=30.0)
                assert "result" in outcome
        finally:
            release.set()
            thread.join(5.0)
            service.close()


def _cfg(length, kinds=("APC", "APC", "APC")):
    return NetworkConfig.from_kinds(PoolKind.MAX, length, kinds)


class TestSiblingPlanLRUTouch:
    """Re-deriving from a sibling plan must refresh its LRU position."""

    def test_retarget_source_survives_eviction(self, tiny_trained_lenet):
        pool = EnginePool(tiny_trained_lenet, max_engines=8, max_plans=2)
        canonical = pool.get(_cfg(256), backend="float").plan
        pool.get(_cfg(32, kinds=("MUX", "APC", "APC")), backend="float")
        # Re-derive a length variant: the canonical max-length plan is
        # the re-target source and must become most-recently-used, so
        # the insertion of the derived plan evicts the *other* family.
        pool.get(_cfg(128), backend="float")
        assert pool.stats()["plans_rederived"] == 1
        # A fresh engine at the canonical length must find the plan
        # still resident (exact hit) — pre-fix it was evicted and had
        # to be gratuitously re-derived.
        engine = pool.get(_cfg(256), backend="float", seed=1)
        stats = pool.stats()
        assert stats["plans_rederived"] == 1, (
            "canonical max-length plan was evicted while it was the "
            "live re-target source")
        assert engine.plan is canonical

    def test_exact_hit_still_touches(self, tiny_trained_lenet):
        """Plain plan hits keep their existing LRU refresh."""
        pool = EnginePool(tiny_trained_lenet, max_engines=8, max_plans=2)
        keep = pool.get(_cfg(64), backend="float").plan
        pool.get(_cfg(64, kinds=("MUX", "APC", "APC")), backend="float")
        pool.get(_cfg(64), backend="float", seed=1)     # plan hit
        pool.get(_cfg(64, kinds=("MUX", "MUX", "APC")),
                 backend="float")                        # evicts the MUX
        assert pool.get(_cfg(64), backend="float", seed=2).plan is keep


class TestQuiescenceKeying:
    """A recycled head id must not inherit a stale gather timestamp."""

    def test_aliased_head_id_does_not_flush_early(self, monkeypatch):
        # Fake the CPython id-reuse that triggers the bug: tickets 5 and
        # 6 (a cancelled head and the next group's head) report the same
        # id, exactly as a freed-and-reallocated ticket would.
        fake_ids = iter([None, None, None, None, 0x7afe, 0x7afe, None])

        class AliasedTicket(batcher_mod.Ticket):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                fake = next(fake_ids, None)
                if fake is not None:
                    self._fake_id = fake

        real_id = id
        monkeypatch.setattr(batcher_mod, "Ticket", AliasedTicket)
        monkeypatch.setattr(
            batcher_mod, "id",
            lambda obj: getattr(obj, "_fake_id", real_id(obj)),
            raising=False)

        batches = []
        a_started = threading.Event()
        lock = threading.Lock()

        def runner(key, payloads):
            if key == "A":
                a_started.set()
                time.sleep(1.2)
            with lock:
                batches.append((key, list(payloads)))
            return payloads

        batcher = MicroBatcher(runner, max_batch=4, max_wait_ms=1600.0,
                               workers=2, max_queue=64)
        try:
            quantum = batcher.quantum          # 200 ms
            for i in range(4):                 # full batch -> flushes now
                batcher.submit("A", f"a{i}")
            assert a_started.wait(5.0)
            # The free worker now gathers this head; its (id, size)
            # state is observed at ~t1.
            stale_head = batcher.submit("A", "a4")
            time.sleep(0.70 * quantum)
            stale_head.cancel()                # shed on next wakeup
            time.sleep(0.05 * quantum)
            t_b = batcher.submit("B", "b0")    # aliased id, same size
            time.sleep(0.25 * quantum)         # stale quantum expires
            t_c = batcher.submit("B", "b1")    # must coalesce with b0
            assert t_b.result(10.0) == "b0"
            assert t_c.result(10.0) == "b1"
        finally:
            batcher.close()
        b_batches = [p for key, p in batches if key == "B"]
        assert b_batches and b_batches[0] == ["b0", "b1"], (
            f"aliased head flushed early, splitting the batch: "
            f"{b_batches}")
