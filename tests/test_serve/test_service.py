"""InferenceService: concurrent-client determinism, overrides, stats.

The headline test is the serving contract: responses to concurrent
coalesced clients are bit-identical to dedicated single-request
``Engine.predict`` calls with the same per-request seed.
"""

import threading

import numpy as np
import pytest

from repro.core.config import NetworkConfig, PoolKind
from repro.engine import Engine
from repro.data.synthetic_mnist import to_bipolar
from repro.serve import InferenceService

LENGTH = 32


@pytest.fixture(scope="module")
def images(small_dataset):
    _, _, x_test, _ = small_dataset
    return to_bipolar(x_test)[:6].reshape(6, -1)


@pytest.fixture(scope="module")
def service(tiny_trained_lenet):
    svc = InferenceService(tiny_trained_lenet, backend="exact",
                           length=LENGTH, max_batch=8, max_wait_ms=20,
                           workers=1, warm=False)
    yield svc
    svc.close()


class TestDeterminism:
    def test_concurrent_clients_match_single_request_engines(
            self, service, tiny_trained_lenet, images):
        """Coalesced responses == fresh dedicated engine per request."""
        results = [None] * len(images)
        barrier = threading.Barrier(len(images))

        def client(i):
            barrier.wait()
            results[i] = service.predict_one(images[i])

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(len(images))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, LENGTH,
                                       ("APC", "APC", "APC"))
        oracle = [int(Engine(tiny_trained_lenet, cfg, backend="exact",
                             seed=0).predict(img[None])[0])
                  for img in images]
        assert results == oracle
        # and at least some coalescing actually happened
        histogram = service.batcher.stats()["batch_size_histogram"]
        assert max(int(size) for size in histogram) > 1

    def test_repeated_requests_are_stable(self, service, images):
        first = service.predict_one(images[0])
        assert all(service.predict_one(images[0]) == first
                   for _ in range(3))

    def test_per_request_seed_changes_streams(self, service,
                                              tiny_trained_lenet, images):
        """seed is part of the group key and reaches the engine."""
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, LENGTH,
                                       ("APC", "APC", "APC"))
        for seed in (0, 9):
            expected = int(Engine(tiny_trained_lenet, cfg, backend="exact",
                                  seed=seed).predict(images[1][None])[0])
            assert service.predict_one(images[1], seed=seed) == expected

    def test_multi_image_request(self, service, images):
        preds = service.predict(images[:4])
        singles = [service.predict_one(img) for img in images[:4]]
        assert preds.tolist() == singles


class TestOverridesAndValidation:
    def test_backend_override(self, service, tiny_trained_lenet, images):
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, LENGTH,
                                       ("APC", "APC", "APC"))
        expected = Engine(tiny_trained_lenet, cfg,
                          backend="float").predict(images[:3])
        out = service.predict(images[:3], backend="float")
        assert out.tolist() == expected.tolist()

    def test_unknown_backend_rejected(self, service, images):
        with pytest.raises(ValueError, match="unknown backend"):
            service.predict_one(images[0], backend="warp")

    def test_unknown_field_rejected(self, service, images):
        with pytest.raises(ValueError, match="unknown request fields"):
            service.predict(images[0], flavor="spicy")

    def test_bad_kinds_rejected(self, service, images):
        with pytest.raises(ValueError, match="MUX/APC"):
            service.predict(images[0], kinds="APC,OR,APC")

    def test_kinds_depth_mismatch_rejected(self, service, images):
        """A 2-kind spec cannot drive the 3-hidden-layer LeNet-5."""
        with pytest.raises(ValueError, match="hidden weight layers"):
            service.predict(images[0], kinds="APC,APC")

    def test_bad_pooling_rejected(self, service, images):
        with pytest.raises(ValueError, match="pooling"):
            service.predict(images[0], pooling="median")

    def test_bad_image_shape_rejected(self, service):
        with pytest.raises(ValueError, match="784"):
            service.predict(np.zeros(100))

    def test_out_of_range_pixels_rejected(self, service):
        with pytest.raises(ValueError, match=r"\[-1, 1\]"):
            service.predict(np.full(784, 3.0))

    def test_unknown_default_backend_fails_fast(self, tiny_trained_lenet):
        with pytest.raises(ValueError, match="unknown backend"):
            InferenceService(tiny_trained_lenet, backend="warp")


class TestStatsAndLifecycle:
    def test_stats_shape(self, service, images):
        service.predict_one(images[0])
        stats = service.stats()
        assert stats["service"]["requests"] >= 1
        assert stats["service"]["latency_ms"]["p50"] > 0
        assert stats["service"]["latency_ms"]["p95"] >= \
            stats["service"]["latency_ms"]["p50"]
        assert stats["batcher"]["batches"] >= 1
        assert stats["pool"]["engines"] >= 1
        assert stats["defaults"]["backend"] == "exact"
        assert stats["defaults"]["length"] == LENGTH

    def test_errors_are_counted(self, service, images):
        before = service.stats()["service"]["errors"]
        with pytest.raises(ValueError):
            service.predict_one(images[0], backend="warp")
        assert service.stats()["service"]["errors"] == before + 1

    def test_closed_service_rejects_requests(self, tiny_trained_lenet,
                                             images):
        svc = InferenceService(tiny_trained_lenet, length=LENGTH,
                               warm=False)
        svc.close()
        svc.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            svc.predict_one(images[0])

    def test_context_manager(self, tiny_trained_lenet, images):
        with InferenceService(tiny_trained_lenet, length=LENGTH,
                              warm=False) as svc:
            assert svc.predict_one(images[0]) in range(10)
        with pytest.raises(RuntimeError):
            svc.predict_one(images[0])
