"""Property tests for the generalized lowering over randomized topologies.

Hypothesis draws random-but-valid conv/pool/dense stacks (varying input
geometry, kernel sizes, channel counts, pooling placement, dense depth)
and asserts the structural invariants of :func:`repro.engine.graph.
build_graph` and :func:`repro.engine.plan.compile_plan` hold for every
one of them — shape inference round-trips, the gain-compensation cascade
stays inside the SRAM range, and ``with_length`` reuses exactly what it
may.  Invalid stacks are enumerated explicitly and must fail with
actionable ``ValueError`` messages.

Models here are *untrained* (initialization only): lowering and
compilation never look at accuracy, so randomized structure is the whole
point and training would only slow the suite down.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FEBKind, LayerConfig, NetworkConfig, PoolKind
from repro.engine.graph import build_graph
from repro.engine.plan import compile_plan
from repro.nn.activations import Tanh
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense
from repro.nn.module import Flatten, Layer, Sequential
from repro.nn.pool import AvgPool2D, MaxPool2D


@st.composite
def random_stack(draw):
    """A random valid (model, config, input_hw, expected-structure) tuple."""
    input_hw = draw(st.sampled_from([(10, 10), (12, 12), (16, 16),
                                     (14, 10)]))
    pooling = draw(st.sampled_from([PoolKind.MAX, PoolKind.AVG]))
    pool_cls = MaxPool2D if pooling is PoolKind.MAX else AvgPool2D
    layers = []
    expected = []          # (op, n_inputs, units, pooled, geometry)
    channels, (h, w) = 1, input_hw
    for _ in range(draw(st.integers(0, 2))):
        kernel = draw(st.sampled_from([2, 3, 5]))
        if h < kernel or w < kernel:
            break
        out_channels = draw(st.integers(1, 4))
        conv_h, conv_w = h - kernel + 1, w - kernel + 1
        want_pool = draw(st.booleans())
        pooled = want_pool and conv_h % 2 == 0 and conv_w % 2 == 0
        layers.append(Conv2D(channels, out_channels, kernel, seed=len(layers)))
        if pooled:
            layers.append(pool_cls(2))
        layers.append(Tanh())
        n = channels * kernel * kernel + 1
        expected.append(("conv", n, out_channels, pooled,
                         (out_channels, (h, w), (conv_h, conv_w))))
        channels = out_channels
        h, w = (conv_h // 2, conv_w // 2) if pooled else (conv_h, conv_w)
    layers.append(Flatten())
    features = channels * h * w
    # at least one hidden layer overall: a bare logit layer has no
    # configurable FEB stage for a NetworkConfig to describe
    min_dense = 0 if expected else 1
    for _ in range(draw(st.integers(min_dense, 2))):
        units = draw(st.integers(2, 12))
        layers.append(Dense(features, units, seed=len(layers)))
        layers.append(Tanh())
        expected.append(("dense", features + 1, units, False, None))
        features = units
    out_units = draw(st.integers(2, 10))
    layers.append(Dense(features, out_units, seed=len(layers)))
    expected.append(("dense", features + 1, out_units, False, None))
    model = Sequential(layers)
    kinds = tuple(draw(st.sampled_from(["MUX", "APC"]))
                  for _ in range(len(expected) - 1))
    length = draw(st.sampled_from([16, 64, 256]))
    config = NetworkConfig.from_kinds(pooling, length, kinds)
    return model, config, input_hw, expected


class TestShapeInferenceRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(random_stack())
    def test_graph_matches_manual_shape_chain(self, stack):
        model, config, input_hw, expected = stack
        graph = build_graph(model, config, input_hw=input_hw)
        assert len(graph) == len(expected)
        assert graph.input_shape == (1, input_hw[0], input_hw[1])
        for node, (op, n, units, pooled, geometry) in zip(graph, expected):
            assert node.op == op
            assert node.n_inputs == n
            assert node.units == units
            assert node.pooled == pooled
            assert node.geometry == geometry
        assert [n.final for n in graph] == \
            [False] * (len(expected) - 1) + [True]
        assert graph.nodes[-1].kind is FEBKind.APC
        assert graph.nodes[-1].name == "Output"

    @settings(max_examples=25, deadline=None)
    @given(random_stack())
    def test_weights_are_views(self, stack):
        model, config, input_hw, _ = stack
        graph = build_graph(model, config, input_hw=input_hw)
        weight_layers = [l for l in model.layers
                         if isinstance(l, (Conv2D, Dense))]
        for node, layer in zip(graph, weight_layers):
            assert node.weight is layer.weight.value


class TestCompileInvariants:
    @settings(max_examples=15, deadline=None)
    @given(random_stack(), st.sampled_from([None, 6, 8]))
    def test_gain_cascade_stays_in_sram_range(self, stack, bits):
        model, config, input_hw, _ = stack
        plan = compile_plan(build_graph(model, config, input_hw=input_hw),
                            weight_bits=bits)
        for lp in plan.layers:
            # every stored variant must fit the [-1, 1] SRAM word range
            # (the cascade's alpha back-off plus quantization guarantee it
            # up to the 0.97 headroom)
            assert np.max(np.abs(lp.weights)) <= 1.0
            assert lp.deficit >= 1.0 - 1e-12
            assert lp.applied_factor > 0.0
            assert lp.n_states >= 2 and lp.n_states % 2 == 0
            if lp.op == "conv":
                assert lp.patch_index.shape == (
                    lp.geometry[2][0] * lp.geometry[2][1],
                    lp.n_inputs - 1)
                assert (lp.pool_windows is not None) == lp.pooled
            else:
                assert lp.patch_index is None and lp.pool_windows is None

    @settings(max_examples=15, deadline=None)
    @given(random_stack())
    def test_compilation_is_deterministic(self, stack):
        model, config, input_hw, _ = stack
        graph = build_graph(model, config, input_hw=input_hw)
        a = compile_plan(graph, weight_bits=7)
        b = compile_plan(graph, weight_bits=7)
        for la, lb in zip(a.layers, b.layers):
            assert np.array_equal(la.weights, lb.weights)
            assert la.n_states == lb.n_states
            assert la.deficit == lb.deficit


class TestWithLengthInvariants:
    @settings(max_examples=15, deadline=None)
    @given(random_stack())
    def test_same_length_returns_self(self, stack):
        model, config, input_hw, _ = stack
        plan = compile_plan(build_graph(model, config, input_hw=input_hw))
        assert plan.with_length(config.length) is plan

    @settings(max_examples=15, deadline=None)
    @given(random_stack(), st.sampled_from([32, 128]))
    def test_all_apc_reuses_layer_plans(self, stack, new_length):
        model, config, input_hw, expected = stack
        apc = NetworkConfig(config.pooling, config.length,
                            tuple(LayerConfig(FEBKind.APC)
                                  for _ in range(len(expected) - 1)))
        plan = compile_plan(build_graph(model, apc, input_hw=input_hw),
                            weight_bits=7)
        other = plan.with_length(new_length)
        assert other.length == new_length
        # APC state numbers never involve L → plans shared outright
        for la, lb in zip(plan.layers, other.layers):
            assert la is lb

    @settings(max_examples=15, deadline=None)
    @given(random_stack(), st.sampled_from([32, 128]))
    def test_raw_quantization_shared_across_lengths(self, stack,
                                                    new_length):
        model, config, input_hw, _ = stack
        plan = compile_plan(build_graph(model, config, input_hw=input_hw),
                            weight_bits=7)
        other = plan.with_length(new_length)
        for la, lb in zip(plan.layers, other.layers):
            assert la.raw_weights is lb.raw_weights
            assert la.raw_bias is lb.raw_bias


def _three_apc():
    return NetworkConfig.from_kinds(PoolKind.MAX, 64, ("APC",) * 3)


class TestInvalidStacks:
    """Structurally broken stacks fail loudly with actionable messages."""

    def test_config_depth_mismatch(self):
        model = Sequential([Flatten(), Dense(100, 10)])
        with pytest.raises(ValueError, match="3 layer kinds"):
            build_graph(model, _three_apc(), input_hw=(10, 10))

    def test_dense_feature_mismatch(self):
        model = Sequential([Flatten(), Dense(64, 16), Tanh(),
                            Dense(16, 10)])
        with pytest.raises(ValueError, match="100"):
            build_graph(model, NetworkConfig.from_kinds(
                PoolKind.MAX, 64, ("APC",)), input_hw=(10, 10))

    def test_conv_channel_mismatch(self):
        """conv2 expects 8 input channels but conv1 produces 4."""
        model = Sequential([Conv2D(1, 4, 3), Tanh(), Conv2D(8, 2, 3),
                            Tanh(), Flatten(), Dense(2 * 6 * 6, 10)])
        with pytest.raises(ValueError, match="channels"):
            build_graph(model, NetworkConfig.from_kinds(
                PoolKind.MAX, 64, ("APC", "APC")), input_hw=(10, 10))

    def test_kernel_does_not_fit(self):
        model = Sequential([Conv2D(1, 2, 5), Tanh(), Flatten(),
                            Dense(2 * 4 * 4, 10)])
        with pytest.raises(ValueError, match="kernel"):
            build_graph(model, NetworkConfig.from_kinds(
                PoolKind.MAX, 64, ("APC",)), input_hw=(4, 4))

    def test_odd_conv_grid_cannot_pool(self):
        model = Sequential([Conv2D(1, 2, 4), MaxPool2D(2), Tanh(),
                            Flatten(), Dense(2 * 3 * 3, 10)])
        # 10 - 4 + 1 = 7 → odd grid feeding a 2×2 pool
        with pytest.raises(ValueError, match="odd"):
            build_graph(model, NetworkConfig.from_kinds(
                PoolKind.MAX, 64, ("APC",)), input_hw=(10, 10))

    def test_pool_without_conv(self):
        model = Sequential([MaxPool2D(2), Flatten(), Dense(25, 16),
                            Tanh(), Dense(16, 10)])
        with pytest.raises(ValueError, match="follow a convolution"):
            build_graph(model, NetworkConfig.from_kinds(
                PoolKind.MAX, 64, ("APC",)), input_hw=(10, 10))

    def test_pool_after_dense(self):
        model = Sequential([Flatten(), Dense(100, 16), MaxPool2D(2),
                            Dense(16, 10)])
        with pytest.raises(ValueError, match="follow a convolution"):
            build_graph(model, NetworkConfig.from_kinds(
                PoolKind.MAX, 64, ("APC",)), input_hw=(10, 10))

    def test_pool_after_final_layer(self):
        model = Sequential([Flatten(), Dense(100, 16), Tanh(),
                            Dense(16, 10), MaxPool2D(2)])
        with pytest.raises(ValueError, match="after the final layer"):
            build_graph(model, NetworkConfig.from_kinds(
                PoolKind.MAX, 64, ("APC",)), input_hw=(10, 10))

    def test_tanh_after_logits(self):
        model = Sequential([Flatten(), Dense(100, 16), Tanh(),
                            Dense(16, 10), Tanh()])
        with pytest.raises(ValueError, match="raw logits"):
            build_graph(model, NetworkConfig.from_kinds(
                PoolKind.MAX, 64, ("APC",)), input_hw=(10, 10))

    def test_conv_after_flatten(self):
        model = Sequential([Flatten(), Dense(100, 64), Tanh(),
                            Conv2D(1, 2, 3), Flatten(), Dense(8, 10)])
        with pytest.raises(ValueError, match="flatten"):
            build_graph(model, NetworkConfig.from_kinds(
                PoolKind.MAX, 64, ("APC", "APC")), input_hw=(10, 10))

    def test_final_layer_must_be_dense(self):
        model = Sequential([Conv2D(1, 2, 3), Tanh()])
        with pytest.raises(ValueError, match="Dense logit layer"):
            build_graph(model, NetworkConfig.from_kinds(
                PoolKind.MAX, 64, ("APC",)), input_hw=(10, 10))

    def test_no_weight_layers(self):
        model = Sequential([Flatten()])
        with pytest.raises(ValueError, match="nothing to lower"):
            build_graph(model, _three_apc(), input_hw=(10, 10))

    def test_unsupported_layer_type(self):
        class Mystery(Layer):
            def forward(self, x, training=False):  # pragma: no cover
                return x

        model = Sequential([Mystery(), Flatten(), Dense(100, 16), Tanh(),
                            Dense(16, 10)])
        with pytest.raises(ValueError, match="Mystery"):
            build_graph(model, NetworkConfig.from_kinds(
                PoolKind.MAX, 64, ("APC",)), input_hw=(10, 10))

    def test_non_2x2_pool_rejected(self):
        model = Sequential([Conv2D(1, 2, 3), MaxPool2D(4), Tanh(),
                            Flatten(), Dense(2 * 2 * 2, 10)])
        with pytest.raises(ValueError, match="2×2"):
            build_graph(model, NetworkConfig.from_kinds(
                PoolKind.MAX, 64, ("APC",)), input_hw=(10, 10))