"""Conformance: the native kernel tier against the pure-NumPy oracle.

Arming the native tier must change **zero output bits** anywhere — these
tests assert bit-identity kernel by kernel (hypothesis properties biased
toward the awkward lengths: ``L % 8 != 0`` and ``L % 64 != 0``), then at
the whole-engine level (exact-backend logits with dispatch on vs off),
and finally that the capability layer degrades gracefully: a box with no
compiler imports fine and falls back to NumPy, ``REPRO_NATIVE=0``
disables the tier, and ``REPRO_NATIVE=1`` turns a silent fallback into a
loud import error.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.native as native
from repro.native import build as native_build
from repro.sc import activation, adders, fsm, ops

needs_native = pytest.mark.skipif(not native.available(),
                                  reason="native kernel tier not built")

# Lengths biased toward the hard cases: L % 8 != 0 and L % 64 != 0.
lengths = st.one_of(
    st.integers(min_value=1, max_value=200),
    st.sampled_from([63, 65, 100, 127, 129, 191, 255, 257, 1023]),
)
batch_shapes = st.sampled_from([(), (1,), (3,), (2, 3)])


def random_bits(data, shape, length):
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1),
                                          label="seed"))
    return (rng.random(shape + (length,)) < 0.5)


# ----------------------------------------------------------------------
# kernel-level bit-identity (native output vs pure-NumPy oracle)
# ----------------------------------------------------------------------

@needs_native
@settings(max_examples=40, deadline=None)
@given(data=st.data(), length=lengths, shape=batch_shapes,
       n=st.integers(min_value=1, max_value=12),
       approximate=st.booleans())
def test_column_counts_bit_identical(data, length, shape, n, approximate):
    packed = ops.pack_bits(random_bits(data, shape + (n,), length))
    count = adders.apc_count if approximate else adders.parallel_counter
    with native.override(True):
        got = count(packed, length)
    with native.override(False):
        ref = count(packed, length)
    assert got.dtype == ref.dtype
    np.testing.assert_array_equal(got, ref)


@needs_native
@settings(max_examples=40, deadline=None)
@given(data=st.data(), length=lengths, shape=batch_shapes,
       n=st.integers(min_value=1, max_value=40))
def test_transpose_pack_bit_identical(data, length, shape, n):
    packed = ops.pack_bits(random_bits(data, shape + (n,), length))
    with native.override(True):
        got = ops.transpose_pack(packed, length)
    with native.override(False):
        ref = ops.transpose_pack(packed, length)
    assert got.shape == ref.shape and got.dtype == ref.dtype
    np.testing.assert_array_equal(got, ref)


@needs_native
@settings(max_examples=40, deadline=None)
@given(data=st.data(), length=lengths, shape=batch_shapes)
def test_popcount_bit_identical(data, length, shape):
    packed = ops.pack_bits(random_bits(data, shape, length))
    with native.override(True):
        got = ops.popcount(packed, length)
        got_sum = ops.popcount_sum(packed, dtype=np.int16)
    with native.override(False):
        ref = ops.popcount(packed, length)
        ref_sum = ops.popcount_sum(packed, dtype=np.int16)
    np.testing.assert_array_equal(got, ref)
    assert got_sum.dtype == ref_sum.dtype
    np.testing.assert_array_equal(got_sum, ref_sum)


@needs_native
@settings(max_examples=40, deadline=None)
@given(data=st.data(), length=lengths, shape=batch_shapes,
       n_states=st.integers(min_value=2, max_value=64))
def test_stanh_packed_bit_identical(data, length, shape, n_states):
    packed = ops.pack_bits(random_bits(data, shape, length))
    threshold = data.draw(st.one_of(
        st.none(), st.integers(min_value=1, max_value=n_states)))
    with native.override(True):
        got = activation.stanh_packed(packed, length, n_states,
                                      threshold=threshold)
    with native.override(False):
        ref = activation.stanh_packed(packed, length, n_states,
                                      threshold=threshold)
    np.testing.assert_array_equal(got, ref)
    assert ops.padding_is_zero(got, length)


@needs_native
@settings(max_examples=40, deadline=None)
@given(data=st.data(), shape=batch_shapes,
       T=st.integers(min_value=1, max_value=150),
       n_states=st.integers(min_value=1, max_value=40),
       dtype=st.sampled_from([np.int16, np.int32, np.int64]))
def test_saturating_counter_bit_identical(data, shape, T, n_states, dtype):
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    inc = rng.integers(-30, 31, size=shape + (T,)).astype(dtype)
    init = int(rng.integers(0, n_states))
    threshold = int(rng.integers(0, n_states + 2))
    with native.override(True):
        got = fsm.saturating_counter(inc, n_states, init=init,
                                     threshold=threshold)
    with native.override(False):
        ref = fsm.saturating_counter(inc, n_states, init=init,
                                     threshold=threshold)
    assert got.dtype == ref.dtype
    np.testing.assert_array_equal(got, ref)


@needs_native
@settings(max_examples=25, deadline=None)
@given(data=st.data(), length=lengths,
       n=st.integers(min_value=1, max_value=40),
       rows=st.integers(min_value=1, max_value=5),
       channels=st.integers(min_value=1, max_value=4))
def test_apc_inner_counts_bit_identical(data, length, n, rows, channels):
    """The fused exact-backend inner product against the unfused NumPy
    arithmetic of ``ExactBackend._apc_counts``."""
    x = ops.pack_bits(random_bits(data, (rows, n), length))
    w = ops.pack_bits(random_bits(data, (channels, n), length))
    with native.override(False):
        wT = ops.transpose_pack(w, length)
        xT = ops.transpose_pack(x, length)
        ham = ops.popcount_sum(xT[None] ^ wT[:, None], dtype=np.int16)
        exact = np.int16(n) - ham
        x_last = ops.unpack_bits(x[:, -1, :], length)
        w_last = ops.unpack_bits(w[:, -1, :], length)
        prod_last = np.uint8(1) ^ x_last[None] ^ w_last[:, None]
        one = np.int16(1)
        ref = (exact & ~one) | ((exact ^ prod_last) & one)
    got = native.apc_inner_counts(x, wT, n, length)
    assert got.dtype == ref.dtype
    np.testing.assert_array_equal(got, ref)


# ----------------------------------------------------------------------
# engine-level: arming the tier changes zero output bits
# ----------------------------------------------------------------------

@needs_native
@pytest.mark.parametrize("kinds,pooling,length", [
    # lengths chosen with L % 64 != 0 (MAX needs a multiple of the
    # hardware pooling segment, 16)
    (("APC", "MUX", "APC"), "MAX", 144),
    (("MUX", "APC", "APC"), "AVG", 136),
])
def test_exact_backend_logits_bit_identical(kinds, pooling, length):
    from repro.core.config import NetworkConfig, PoolKind
    from repro.engine.exact import ExactBackend
    from repro.engine.plan import compile_plan
    from repro.nn.zoo import build_lenet5

    model = build_lenet5("max" if pooling == "MAX" else "avg", seed=0)
    cfg = NetworkConfig.from_kinds(PoolKind[pooling], length, kinds)
    plan = compile_plan(model, cfg)
    imgs = np.random.default_rng(5).uniform(-1, 1, size=(2, 784))
    with native.override(False):
        ref = ExactBackend(plan, seed=3).forward(imgs)
    with native.override(True):
        got = ExactBackend(plan, seed=3).forward(imgs)
    np.testing.assert_array_equal(got, ref)


# ----------------------------------------------------------------------
# capability layer: fallback, REPRO_NATIVE=0/1
# ----------------------------------------------------------------------

def _run_subprocess(code: str, tmp_path, **env_overrides):
    """Run ``code`` in a fresh interpreter with a clean native cache."""
    src = str(Path(ops.__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = src
    env["REPRO_NATIVE_CACHE"] = str(tmp_path / "native-cache")
    env.pop("REPRO_NATIVE", None)
    env.pop("REPRO_NATIVE_CC", None)
    env.update(env_overrides)
    return subprocess.run([sys.executable, "-c", code],
                          capture_output=True, text=True, env=env,
                          timeout=180)


_prebuilt_in_package = (
    native_build.SOURCE.parent / native_build.lib_name()).exists()


@pytest.mark.skipif(_prebuilt_in_package,
                    reason="prebuilt library next to kernels.c shadows "
                           "the no-compiler scenario")
def test_import_works_with_no_compiler(tmp_path):
    """A box with no toolchain must import and compute on pure NumPy."""
    proc = _run_subprocess(
        "import numpy as np\n"
        "import repro.native as native\n"
        "assert not native.available(), native.status()\n"
        "status = native.status()\n"
        "assert status['reason'], status\n"
        "from repro.sc import adders, ops\n"
        "packed = ops.pack_bits(np.ones((4, 100), dtype=np.uint8))\n"
        "assert ops.popcount(packed, 100).tolist() == [100] * 4\n"
        "assert adders.apc_count(packed, 100).shape == (100,)\n"
        "print('fallback ok:', status['reason'])\n",
        tmp_path, REPRO_NATIVE_CC=str(tmp_path / "no-such-cc"))
    assert proc.returncode == 0, proc.stderr
    assert "fallback ok:" in proc.stdout


def test_repro_native_0_disables_tier(tmp_path):
    proc = _run_subprocess(
        "import numpy as np\n"
        "import repro.native as native\n"
        "assert not native.available()\n"
        "assert not native.enabled()\n"
        "assert native.status()['reason'] == 'disabled by REPRO_NATIVE=0'\n"
        "from repro.sc import ops\n"
        "packed = ops.pack_bits(np.ones((2, 65), dtype=np.uint8))\n"
        "assert ops.popcount(packed, 65).tolist() == [65, 65]\n",
        tmp_path, REPRO_NATIVE="0")
    assert proc.returncode == 0, proc.stderr


def test_repro_native_1_fails_loudly_without_compiler(tmp_path):
    proc = _run_subprocess(
        "import repro.native\n",
        tmp_path, REPRO_NATIVE="1",
        REPRO_NATIVE_CC=str(tmp_path / "no-such-cc"))
    assert proc.returncode != 0
    assert "REPRO_NATIVE=1" in proc.stderr


@needs_native
def test_override_context_restores_dispatch():
    assert native.enabled()
    with native.override(False):
        assert not native.enabled()
        with native.override(True):
            assert native.enabled()
        assert not native.enabled()
    assert native.enabled()


def test_status_reports_shape():
    status = native.status()
    assert set(status) == {"available", "enabled", "reason", "override",
                           "lib"}
    if status["available"]:
        assert status["lib"] and Path(status["lib"]).exists()
    else:
        assert status["reason"]
