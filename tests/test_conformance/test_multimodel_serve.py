"""Multi-model serving: model digests in pool keys, two-model service.

The regression these tests pin down: before the model zoo, ``EnginePool``
keyed plans and engines on the config digest alone — two different
models with identical configs-ex-length would silently share quantized
weights and weight streams.  Every key now includes
:func:`repro.nn.zoo.model_digest`.
"""

import numpy as np
import pytest

from repro.core.config import NetworkConfig, PoolKind
from repro.engine import Engine
from repro.nn.zoo import model_digest
from repro.serve.pool import EnginePool
from repro.serve.service import InferenceService


def _cfg(length=32, kinds=("APC", "APC", "APC"), pooling=PoolKind.MAX):
    return NetworkConfig.from_kinds(pooling, length, kinds)


@pytest.fixture(scope="module")
def images(small_dataset):
    from repro.data.synthetic_mnist import to_bipolar
    _, _, x_test, _ = small_dataset
    return to_bipolar(x_test)[:4].reshape(4, -1)


class TestModelDigest:
    def test_retraining_changes_digest(self, zoo_trained):
        from repro.nn.zoo import build_zoo_model
        trained = zoo_trained["lenet_s"]
        fresh = build_zoo_model("lenet_s", "max", seed=0)
        assert model_digest(trained) != model_digest(fresh)

    def test_architectures_have_distinct_digests(self, zoo_trained):
        digests = {model_digest(m) for m in zoo_trained.values()}
        assert len(digests) == len(zoo_trained)

    def test_digest_is_stable(self, zoo_trained):
        m = zoo_trained["mlp"]
        assert model_digest(m) == model_digest(m)


class TestPoolModelKeys:
    def test_two_models_same_config_get_distinct_plans(self, zoo_trained):
        """The pre-fix failure mode: same config digest, different model
        — the pool must not hand model B model A's quantized weights."""
        pool = EnginePool({"a": zoo_trained["lenet_s"],
                           "b": zoo_trained["conv3"]})
        cfg_a = _cfg(kinds=("APC",) * 3)
        cfg_b = _cfg(kinds=("APC",) * 4)
        ea = pool.get(cfg_a, backend="float", model="a")
        eb = pool.get(cfg_b, backend="float", model="b")
        assert ea is not eb
        assert ea.plan is not eb.plan
        # same *architecture*, differently-trained weights: still split
        from repro.nn.zoo import build_zoo_model
        pool2 = EnginePool({"trained": zoo_trained["lenet_s"],
                            "fresh": build_zoo_model("lenet_s", "max", 0)})
        et = pool2.get(cfg_a, backend="float", model="trained")
        ef = pool2.get(cfg_a, backend="float", model="fresh")
        assert et.plan is not ef.plan
        assert not np.array_equal(et.plan.layers[0].weights,
                                  ef.plan.layers[0].weights)

    def test_same_model_still_shares_engine(self, zoo_trained):
        pool = EnginePool({"a": zoo_trained["lenet_s"],
                           "b": zoo_trained["mlp"]})
        first = pool.get(_cfg(), backend="float", model="a")
        assert pool.get(_cfg(), backend="float", model="a") is first
        assert pool.stats()["hits"] == 1

    def test_default_model_is_first_entry(self, zoo_trained):
        pool = EnginePool({"a": zoo_trained["lenet_s"],
                           "b": zoo_trained["mlp"]})
        assert pool.default_model == "a"
        assert pool.get(_cfg(), backend="float") is \
            pool.get(_cfg(), backend="float", model="a")

    def test_unknown_model_rejected(self, zoo_trained):
        pool = EnginePool({"a": zoo_trained["lenet_s"]})
        with pytest.raises(ValueError, match="unknown model"):
            pool.get(_cfg(), backend="float", model="nope")

    def test_single_model_construction_unchanged(self, zoo_trained):
        pool = EnginePool(zoo_trained["lenet_s"])
        assert pool.default_model == "default"
        assert pool.model is zoo_trained["lenet_s"]
        assert pool.get(_cfg(), backend="float") is not None

    def test_length_siblings_still_share_plans_per_model(self, zoo_trained):
        pool = EnginePool({"a": zoo_trained["lenet_s"],
                           "b": zoo_trained["mlp"]})
        a32 = pool.get(_cfg(32), backend="float", model="a")
        a64 = pool.get(_cfg(64), backend="float", model="a")
        pool.get(_cfg(32, kinds=("APC", "APC")), backend="float", model="b")
        stats = pool.stats()
        # a's L=64 re-derives from a's L=32 plan; b compiles fresh
        assert (stats["plans_compiled"], stats["plans_rederived"]) == (2, 1)
        for la, lb in zip(a32.plan.layers, a64.plan.layers):
            assert la is lb


class TestTwoModelService:
    def test_requests_route_to_their_model(self, zoo_trained, images):
        models = {"lenet_s": zoo_trained["lenet_s"],
                  "mlp": zoo_trained["mlp"]}
        with InferenceService(models, backend="exact", length=32,
                              max_wait_ms=1.0) as service:
            for name, model in models.items():
                got = service.predict(images, model=name, seed=5)
                cfg = _cfg(32, kinds=("APC",) * (3 if name == "lenet_s"
                                                 else 2))
                engine = Engine(model, cfg, backend="exact", seed=5)
                # the serving contract: every coalesced image is
                # bit-identical to a fresh single-image predict with the
                # same per-request seed — per model, through the shared
                # batcher and pool
                want = [int(engine.backend.forward_independent(
                    img[None])[0].argmax()) for img in images]
                assert np.array_equal(got, want), name

    def test_unknown_model_is_a_value_error(self, zoo_trained, images):
        with InferenceService({"mlp": zoo_trained["mlp"]},
                              backend="float") as service:
            with pytest.raises(ValueError, match="unknown model"):
                service.predict(images[0], model="lenet_s")

    def test_default_kinds_follow_target_model_depth(self, zoo_trained,
                                                     images):
        """kinds=None resolves per request: 3 hidden layers for lenet_s,
        2 for mlp — no cross-model kinds leakage."""
        models = {"lenet_s": zoo_trained["lenet_s"],
                  "mlp": zoo_trained["mlp"]}
        with InferenceService(models, backend="float") as service:
            assert service.predict(images[0], model="lenet_s").shape == (1,)
            assert service.predict(images[0], model="mlp").shape == (1,)
            stats = service.stats()
            assert stats["pool"]["models"] == ["lenet_s", "mlp"]

    def test_explicit_kinds_validated_against_model(self, zoo_trained,
                                                    images):
        with InferenceService({"mlp": zoo_trained["mlp"]},
                              backend="float") as service:
            with pytest.raises(ValueError, match="hidden weight layers"):
                service.predict(images[0], kinds="APC,APC,APC")

    def test_payloads_validated_against_model_geometry(self):
        """A model with non-28×28 input geometry accepts its own pixel
        count and rejects the default 784 — validation follows the
        resolved model, not a hardcoded LeNet shape."""
        from repro.nn.activations import Tanh
        from repro.nn.dense import Dense
        from repro.nn.module import Flatten, Sequential

        tiny = Sequential([Flatten(), Dense(100, 16), Tanh(),
                           Dense(16, 10)])
        tiny.input_hw = (10, 10)
        with InferenceService({"tiny": tiny}, backend="float",
                              warm=False) as service:
            preds = service.predict(np.zeros(100))
            assert preds.shape == (1,)
            with pytest.raises(ValueError, match="100-pixel"):
                service.predict(np.zeros(784))
