"""Cross-backend differential conformance over the model zoo.

Every cell runs one zoo architecture under one SC design point through
the registered backends and checks they tell a consistent story:

* ``float`` must match the trained model's own ``predict`` **exactly**
  (argmax) whenever the config's pooling matches the pooling the model
  was trained with — the float backend is a re-execution of the same
  network over the layer-graph IR, so any disagreement is a lowering
  bug, not noise;
* ``surrogate`` (deterministic transfer-curve mode) and ``noise`` logits
  must correlate with the float logits above a *calibrated* floor — the
  measured values sit 2× or more above every floor, so a failure means a
  broken executor, not unlucky sampling;
* ``exact`` logits, averaged over a few stream seeds to suppress the
  stochastic component, must correlate with the float logits above a
  per-cell calibrated floor.  Briefly-trained models have tiny logit
  margins, so raw per-seed agreement is noise-dominated at short ``L``
  (true for the paper's LeNet-5 too, pre-dating the zoo); the
  seed-averaged correlation is the discriminating statistic — a wrong
  patch index, pooling window or weight variant drives it to ~0.

The exact backend additionally stays **bit-identical** to the frozen
pre-engine oracle (:mod:`repro.engine.reference`) for the paper's
LeNet-5 — the regression anchor that generalizing the lowering must not
move.
"""

import numpy as np
import pytest

from repro.core.config import NetworkConfig, PoolKind
from repro.engine import Engine
from repro.engine.reference import ReferenceSCNetwork
from repro.nn.zoo import default_kinds

N_IMAGES = 10
EXACT_SEEDS = 4
EXACT_LENGTH = 256
FLOAT_LENGTH = 128

#: (model, kinds, pooling, calibrated exact-corr floor).  Floors are
#: ~half the locally measured seed-averaged correlation (0.35-0.69),
#: leaving headroom for training-numerics drift across numpy versions
#: while still failing hard on structural lowering bugs (corr ≈ 0).
EXACT_CELLS = [
    ("lenet_s", None, PoolKind.MAX, 0.30),
    ("lenet_s", None, PoolKind.AVG, 0.15),
    ("mlp", None, PoolKind.MAX, 0.30),
    ("mlp", None, PoolKind.AVG, 0.30),
    ("conv3", None, PoolKind.MAX, 0.30),
    ("conv3", None, PoolKind.AVG, 0.30),
    ("lenet_s", ("MUX", "APC", "APC"), PoolKind.MAX, 0.20),
    ("lenet_s", ("MUX", "APC", "APC"), PoolKind.AVG, 0.30),
    ("conv3", ("APC", "APC", "MUX", "APC"), PoolKind.MAX, 0.20),
]

FLOAT_CELLS = [(m, k, p) for (m, k, p, _) in EXACT_CELLS]


def _cfg(model_name, kinds, pooling, length):
    kinds = default_kinds(model_name) if kinds is None else kinds
    return NetworkConfig.from_kinds(pooling, length, kinds,
                                    name=f"conf-{model_name}")


def _mean_logit_corr(a: np.ndarray, b: np.ndarray) -> float:
    """Mean per-image Pearson correlation between two logit banks."""
    return float(np.mean([np.corrcoef(a[i], b[i])[0, 1]
                          for i in range(a.shape[0])]))


@pytest.fixture(scope="module")
def images(small_dataset):
    from repro.data.synthetic_mnist import to_bipolar
    _, _, x_test, _ = small_dataset
    return to_bipolar(x_test)[:N_IMAGES].reshape(N_IMAGES, -1)


class TestFloatMatchesModel:
    """The float backend re-executes the trained net over the IR."""

    @pytest.mark.parametrize("model_name", ["lenet_s", "mlp", "conv3"])
    def test_zoo_float_argmax_equals_model_predict(self, zoo_trained,
                                                   images, model_name):
        model = zoo_trained[model_name]
        cfg = _cfg(model_name, None, PoolKind.MAX, FLOAT_LENGTH)
        engine = Engine(model, cfg, backend="float", seed=0)
        direct = model.predict(images.reshape(-1, 1, 28, 28))
        assert np.array_equal(engine.predict(images), direct)

    def test_lenet5_float_argmax_equals_model_predict(self,
                                                      tiny_trained_lenet,
                                                      images):
        cfg = NetworkConfig.from_kinds(PoolKind.MAX, FLOAT_LENGTH,
                                       ("APC", "APC", "APC"))
        engine = Engine(tiny_trained_lenet, cfg, backend="float", seed=0)
        direct = tiny_trained_lenet.predict(images.reshape(-1, 1, 28, 28))
        assert np.array_equal(engine.predict(images), direct)


class TestFloatDomainBackends:
    """Surrogate / noise logits track the float reference per cell."""

    @pytest.mark.parametrize("model_name,kinds,pooling", FLOAT_CELLS)
    def test_surrogate_correlates_with_float(self, zoo_trained, images,
                                             model_name, kinds, pooling):
        model = zoo_trained[model_name]
        cfg = _cfg(model_name, kinds, pooling, FLOAT_LENGTH)
        ref = Engine(model, cfg, backend="float", seed=0).forward(images)
        sur = Engine(model, cfg, backend="surrogate", seed=0,
                     noisy=False, samples=120).forward(images)
        assert _mean_logit_corr(ref, sur) > 0.5   # measured 0.79-0.96

    @pytest.mark.parametrize("model_name,kinds,pooling", FLOAT_CELLS)
    def test_noise_correlates_with_float(self, zoo_trained, images,
                                         model_name, kinds, pooling):
        model = zoo_trained[model_name]
        cfg = _cfg(model_name, kinds, pooling, FLOAT_LENGTH)
        ref = Engine(model, cfg, backend="float", seed=0).forward(images)
        noi = Engine(model, cfg, backend="noise", seed=0,
                     samples=60).forward(images)
        assert _mean_logit_corr(ref, noi) > 0.25  # measured 0.55-0.87


class TestExactConformance:
    """Seed-averaged exact logits track the float reference per cell."""

    @pytest.mark.parametrize("model_name,kinds,pooling,floor", EXACT_CELLS)
    def test_exact_correlates_with_float(self, zoo_trained, images,
                                         model_name, kinds, pooling,
                                         floor):
        model = zoo_trained[model_name]
        cfg = _cfg(model_name, kinds, pooling, EXACT_LENGTH)
        ref = Engine(model, cfg, backend="float", seed=0).forward(images)
        avg = np.mean([
            Engine(model, cfg, backend="exact", seed=s).forward(images)
            for s in range(EXACT_SEEDS)
        ], axis=0)
        assert _mean_logit_corr(ref, avg) > floor

    @pytest.mark.parametrize("model_name", ["lenet_s", "mlp", "conv3"])
    def test_exact_deterministic_per_seed(self, zoo_trained, images,
                                          model_name):
        """Same seed → byte-identical logits, any topology."""
        model = zoo_trained[model_name]
        cfg = _cfg(model_name, None, PoolKind.MAX, 64)
        a = Engine(model, cfg, backend="exact", seed=3).forward(images[:3])
        b = Engine(model, cfg, backend="exact", seed=3).forward(images[:3])
        assert np.array_equal(a, b)

    def test_conv_free_model_keeps_memory_bounded_batching(self,
                                                           zoo_trained):
        """_max_batch must stay finite for conv-free stacks — dense
        working sets count too (regression: per_image was 0 for mlp and
        the whole request ran as one unbounded chunk)."""
        model = zoo_trained["mlp"]
        cfg = _cfg("mlp", None, PoolKind.MAX, 64)
        backend = Engine(model, cfg, backend="exact", seed=0).backend
        assert backend._max_batch() < backend.batch_budget

    def test_unpooled_mux_conv_under_avg_pooling(self, zoo_trained,
                                                 images):
        """conv3's pool-free MUX conv stage under network-wide average
        pooling: no pooling select exists for that stage (regression:
        a phantom select used to be drawn and silently discarded)."""
        model = zoo_trained["conv3"]
        cfg = _cfg("conv3", ("APC", "APC", "MUX", "APC"), PoolKind.AVG, 64)
        # drawing selects advances the stream factory, so introspect on
        # a throwaway engine, not the ones under comparison
        probe = Engine(model, cfg, backend="exact", seed=3)
        selects = probe.backend._draw_selects(1)[0]
        assert ("ip", 2) in selects        # the MUX stage's own select
        assert ("pool", 2) not in selects  # ... but no pooling select
        a = Engine(model, cfg, backend="exact", seed=3).forward(images[:2])
        b = Engine(model, cfg, backend="exact", seed=3).forward(images[:2])
        assert np.array_equal(a, b)

    @pytest.mark.slow
    def test_long_stream_exact_agreement(self, zoo_trained, images):
        """At L=1024 a single stream seed already tracks float closely
        (measured: agreement 0.6, corr 0.83)."""
        model = zoo_trained["lenet_s"]
        cfg = _cfg("lenet_s", None, PoolKind.MAX, 1024)
        ref = Engine(model, cfg, backend="float", seed=0)
        exact = Engine(model, cfg, backend="exact", seed=0)
        assert _mean_logit_corr(ref.forward(images),
                                exact.forward(images)) > 0.55
        agreement = float((ref.predict(images)
                           == exact.predict(images)).mean())
        assert agreement >= 0.3


class TestFrozenOracle:
    """Generalized lowering must not move the paper's LeNet-5 by a bit."""

    @pytest.mark.parametrize("kinds,pooling", [
        (("MUX", "APC", "APC"), PoolKind.MAX),
        (("APC", "APC", "APC"), PoolKind.AVG),
    ])
    def test_lenet5_exact_bit_identical_to_reference(self,
                                                     tiny_trained_lenet,
                                                     images, kinds,
                                                     pooling):
        cfg = NetworkConfig.from_kinds(pooling, 64, kinds)
        engine = Engine(tiny_trained_lenet, cfg, backend="exact", seed=0)
        oracle = ReferenceSCNetwork(tiny_trained_lenet, cfg, seed=0)
        got = engine.forward(images[:2])
        want = np.stack([oracle.forward_image(img) for img in images[:2]])
        assert np.array_equal(got, want)
