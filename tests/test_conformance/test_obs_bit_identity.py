"""Observability is pure observation: arming it moves zero output bits.

The whole ``repro.obs`` contract rests on instrumentation reading
clocks and writing counters/JSON — never touching an RNG, never
branching on armed-ness in a way that changes compute.  This test
pins that: exact-backend logits with tracing + kernel profiling +
metrics all armed are ``np.array_equal`` to a fully disarmed run.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.config import NetworkConfig, PoolKind
from repro.engine import Engine
from repro.obs import kernels, trace
from repro.obs.registry import set_armed

LENGTH = 64
N_IMAGES = 4


@pytest.fixture()
def images(small_dataset):
    from repro.data.synthetic_mnist import to_bipolar
    _, _, x_test, _ = small_dataset
    return to_bipolar(x_test)[:N_IMAGES].reshape(N_IMAGES, -1)


def _exact_logits(model, images):
    cfg = NetworkConfig.from_kinds(PoolKind.MAX, LENGTH,
                                   ("APC", "APC", "APC"))
    return Engine(model, cfg, backend="exact", seed=7).forward(images)


def test_exact_logits_identical_armed_vs_disarmed(tiny_trained_lenet,
                                                  images, tmp_path):
    # Disarmed baseline: no tracing, no profiling, metrics frozen.
    set_armed(False)
    try:
        baseline = _exact_logits(tiny_trained_lenet, images)
    finally:
        set_armed(True)

    # Everything armed at once, into throwaway sinks.
    with obs.scoped_registry():
        trace.configure(str(tmp_path / "trace.jsonl"))
        kernels.arm(True)
        try:
            armed = _exact_logits(tiny_trained_lenet, images)
        finally:
            kernels.arm(False)
            trace.configure(None)

    assert np.array_equal(baseline, armed)
    # The armed run really did observe — both sinks are non-trivial.
    assert (tmp_path / "trace.jsonl").read_text().strip()


def test_forward_independent_identical_armed_vs_disarmed(
        tiny_trained_lenet, images, tmp_path):
    """The per-request stream-fork path (what serving uses) too."""
    cfg = NetworkConfig.from_kinds(PoolKind.MAX, LENGTH,
                                   ("MUX", "APC", "APC"))

    set_armed(False)
    try:
        engine = Engine(tiny_trained_lenet, cfg, backend="exact", seed=3)
        baseline = engine.backend.forward_independent(images)
    finally:
        set_armed(True)

    with obs.scoped_registry():
        trace.configure(str(tmp_path / "trace.jsonl"))
        kernels.arm(True)
        try:
            engine = Engine(tiny_trained_lenet, cfg, backend="exact", seed=3)
            armed = engine.backend.forward_independent(images)
        finally:
            kernels.arm(False)
            trace.configure(None)

    assert np.array_equal(baseline, armed)
