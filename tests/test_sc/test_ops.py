"""Tests for the packed-bit operations in repro.sc.ops."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sc import ops

bit_arrays = st.integers(min_value=1, max_value=70).flatmap(
    lambda n: st.lists(st.integers(0, 1), min_size=n, max_size=n)
)


class TestPackUnpack:
    @given(bit_arrays)
    @settings(max_examples=40)
    def test_round_trip(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        packed = ops.pack_bits(arr)
        np.testing.assert_array_equal(ops.unpack_bits(packed, len(bits)), arr)

    def test_batch_shapes(self):
        bits = np.zeros((3, 4, 20), dtype=np.uint8)
        packed = ops.pack_bits(bits)
        assert packed.shape == (3, 4, 3)
        assert ops.unpack_bits(packed, 20).shape == (3, 4, 20)

    def test_packed_nbytes(self):
        assert ops.packed_nbytes(8) == 1
        assert ops.packed_nbytes(9) == 2
        assert ops.packed_nbytes(1024) == 128


class TestPadMask:
    def test_full_bytes(self):
        np.testing.assert_array_equal(ops.pad_mask(16), [0xFF, 0xFF])

    def test_partial_byte(self):
        mask = ops.pad_mask(12)
        assert mask[0] == 0xFF
        assert mask[1] == 0xF0  # top 4 bits valid


class TestPopcount:
    @given(bit_arrays)
    @settings(max_examples=40)
    def test_matches_sum(self, bits):
        arr = np.array(bits, dtype=np.uint8)
        packed = ops.pack_bits(arr)
        assert ops.popcount(packed, len(bits)) == arr.sum()

    def test_batched(self, rng):
        bits = (rng.random((5, 33)) < 0.5).astype(np.uint8)
        packed = ops.pack_bits(bits)
        np.testing.assert_array_equal(ops.popcount(packed, 33),
                                      bits.sum(axis=-1))


class TestLogicOps:
    @pytest.fixture()
    def pair(self, rng):
        a = (rng.random(100) < 0.5).astype(np.uint8)
        b = (rng.random(100) < 0.5).astype(np.uint8)
        return a, b

    def test_and(self, pair):
        a, b = pair
        out = ops.and_(ops.pack_bits(a), ops.pack_bits(b))
        np.testing.assert_array_equal(ops.unpack_bits(out, 100), a & b)

    def test_or(self, pair):
        a, b = pair
        out = ops.or_(ops.pack_bits(a), ops.pack_bits(b))
        np.testing.assert_array_equal(ops.unpack_bits(out, 100), a | b)

    def test_xor(self, pair):
        a, b = pair
        out = ops.xor_(ops.pack_bits(a), ops.pack_bits(b))
        np.testing.assert_array_equal(ops.unpack_bits(out, 100), a ^ b)

    def test_xnor(self, pair):
        a, b = pair
        out = ops.xnor_(ops.pack_bits(a), ops.pack_bits(b), 100)
        np.testing.assert_array_equal(ops.unpack_bits(out, 100),
                                      1 - (a ^ b))

    def test_xnor_pad_bits_stay_zero(self):
        """XNOR sets bits; padding must be re-zeroed for popcounts."""
        a = ops.pack_bits(np.zeros(12, dtype=np.uint8))
        out = ops.xnor_(a, a, 12)
        assert ops.popcount(out, 12) == 12  # not 16

    def test_not_pad_bits_stay_zero(self):
        a = ops.pack_bits(np.zeros(9, dtype=np.uint8))
        out = ops.not_(a, 9)
        assert ops.popcount(out, 9) == 9


class TestMuxSelect:
    def test_selects_expected_bits(self):
        bits = np.stack([np.zeros(16, dtype=np.uint8),
                         np.ones(16, dtype=np.uint8)])
        packed = ops.pack_bits(bits)
        select = np.array([0, 1] * 8)
        out = ops.unpack_bits(ops.mux_select(packed, select, 16), 16)
        np.testing.assert_array_equal(out, select)

    def test_mean_value(self, rng):
        """The MUX output probability is the mean of the inputs'."""
        n, L = 4, 4096
        probs = np.array([0.1, 0.3, 0.5, 0.9])
        bits = (rng.random((n, L)) < probs[:, None]).astype(np.uint8)
        select = rng.integers(0, n, L)
        out = ops.mux_select(ops.pack_bits(bits), select, L)
        assert ops.popcount(out, L) / L == pytest.approx(probs.mean(),
                                                         abs=0.03)

    def test_bad_select_shape_rejected(self):
        packed = ops.pack_bits(np.zeros((2, 16), dtype=np.uint8))
        with pytest.raises(ValueError, match="select"):
            ops.mux_select(packed, np.zeros(8, dtype=int), 16)

    def test_out_of_range_select_rejected(self):
        packed = ops.pack_bits(np.zeros((2, 16), dtype=np.uint8))
        with pytest.raises(ValueError, match="select values"):
            ops.mux_select(packed, np.full(16, 5), 16)


class TestSegmentPopcount:
    def test_counts_per_segment(self):
        bits = np.array([1] * 8 + [0] * 8 + [1, 0] * 4, dtype=np.uint8)
        packed = ops.pack_bits(bits)
        np.testing.assert_array_equal(
            ops.segment_popcount(packed, 24, 8), [8, 0, 4]
        )

    def test_non_dividing_segment_rejected(self):
        packed = ops.pack_bits(np.zeros(24, dtype=np.uint8))
        with pytest.raises(ValueError, match="divide"):
            ops.segment_popcount(packed, 24, 7)
