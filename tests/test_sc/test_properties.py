"""Property-based invariants of the SC substrate (hypothesis).

These complement the targeted unit tests with randomized invariants on
the core algebra: decode bounds, operator identities, adder scaling
relations and FSM saturation — the properties every downstream module
silently relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sc import activation, adders, ops
from repro.sc.bitstream import Bitstream
from repro.sc.encoding import Encoding
from repro.sc.rng import StreamFactory

lengths = st.integers(min_value=9, max_value=200)
values = st.floats(min_value=-1.0, max_value=1.0)


class TestBitstreamAlgebra:
    @given(values, values, st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_xnor_commutes(self, a, b, seed):
        fab = StreamFactory(seed=seed)
        sa = fab.streams(a, 256)
        sb = fab.streams(b, 256)
        np.testing.assert_array_equal(sa.xnor(sb).data, sb.xnor(sa).data)

    @given(values, st.integers(0, 1000), lengths)
    @settings(max_examples=25, deadline=None)
    def test_double_invert_identity(self, x, seed, length):
        fab = StreamFactory(seed=seed)
        s = fab.streams(x, length)
        np.testing.assert_array_equal((~(~s)).data, s.data)

    @given(values, st.integers(0, 1000), lengths)
    @settings(max_examples=25, deadline=None)
    def test_decode_always_in_range(self, x, seed, length):
        fab = StreamFactory(seed=seed)
        v = float(fab.streams(x, length).value())
        assert -1.0 <= v <= 1.0

    @given(values, st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_xnor_with_ones_is_identity(self, x, seed):
        """value 1 is the multiplicative identity: x · 1 = x."""
        fab = StreamFactory(seed=seed)
        s = fab.streams(x, 128)
        one = Bitstream.ones((), 128, Encoding.BIPOLAR)
        np.testing.assert_array_equal(s.xnor(one).data, s.data)


class TestAdderInvariants:
    @given(st.integers(2, 12), st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_or_bounded_by_inputs_and_sum(self, n, seed):
        """max(p_i) <= P(OR) <= min(1, Σ p_i) for any streams."""
        rng = np.random.default_rng(seed)
        bits = (rng.random((n, 64)) < rng.random((n, 1))).astype(np.uint8)
        packed = ops.pack_bits(bits)
        out = adders.or_add(packed)
        p_out = ops.popcount(out, 64)
        per_input = ops.popcount(packed, 64)
        assert p_out >= per_input.max()
        assert p_out <= min(64, per_input.sum())

    @given(st.integers(2, 16), st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_apc_bounded_by_input_count(self, n, seed):
        """The LSB approximation deviates by at most ±1 from the exact
        count, so the output lies in [0, n+1]."""
        rng = np.random.default_rng(seed)
        bits = (rng.random((n, 64)) < 0.5).astype(np.uint8)
        counts = adders.apc_count(ops.pack_bits(bits), 64)
        assert counts.min() >= 0
        assert counts.max() <= n + 1

    @given(st.integers(2, 8), st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_mux_output_bits_come_from_inputs(self, n, seed):
        """Every MUX output bit equals the selected input's bit."""
        rng = np.random.default_rng(seed)
        bits = (rng.random((n, 32)) < 0.5).astype(np.uint8)
        select = rng.integers(0, n, 32)
        out = ops.unpack_bits(
            adders.mux_add(ops.pack_bits(bits), select, 32), 32
        )
        np.testing.assert_array_equal(out, bits[select, np.arange(32)])


class TestActivationInvariants:
    @given(st.integers(2, 40), values, st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_stanh_output_valid(self, k_half, x, seed):
        fab = StreamFactory(seed=seed)
        out = activation.stanh(fab.streams(x, 128), 2 * k_half)
        assert -1.0 <= float(out.value()) <= 1.0

    @given(st.integers(1, 20), st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_btanh_monotone_in_counts(self, n, seed):
        """Uniformly larger counts cannot lower the Btanh output."""
        rng = np.random.default_rng(seed)
        low = rng.integers(0, n, (1, 96))
        high = np.minimum(low + rng.integers(0, 2, (1, 96)), n)
        k = max(2 * n, 2)
        out_low = activation.btanh_counts(low, n, k).mean()
        out_high = activation.btanh_counts(high, n, k).mean()
        assert out_high >= out_low - 1e-12


class TestQuantizationProperties:
    @given(st.lists(values, min_size=1, max_size=30),
           st.integers(2, 16))
    @settings(max_examples=30, deadline=None)
    def test_quantization_idempotent(self, ws, bits):
        """Quantizing twice equals quantizing once."""
        from repro.storage.quantization import (
            dequantize_codes,
            quantize_weights,
        )
        w = np.array(ws)
        once = dequantize_codes(quantize_weights(w, bits), bits)
        twice = dequantize_codes(quantize_weights(once, bits), bits)
        np.testing.assert_allclose(once, twice)
