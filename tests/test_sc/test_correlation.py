"""Tests for stream correlation analysis and decorrelation."""

import numpy as np
import pytest

from repro.sc import ops
from repro.sc.correlation import (
    decorrelate,
    multiply_error_vs_scc,
    pearson,
    scc,
)
from repro.sc.rng import StreamFactory


@pytest.fixture()
def factory():
    return StreamFactory(seed=0)


class TestScc:
    def test_identical_streams(self, factory):
        a = factory.packed(0.3, 1024)
        assert scc(a, a, 1024) == pytest.approx(1.0)

    def test_complementary_streams(self, factory):
        a = factory.packed(0.0, 1024)
        b = ops.not_(a, 1024)
        assert scc(a, b, 1024) == pytest.approx(-1.0)

    def test_independent_near_zero(self, factory):
        a = factory.packed(0.2, 8192)
        b = factory.packed(-0.1, 8192)
        assert abs(float(scc(a, b, 8192))) < 0.1

    def test_constant_stream_zero(self, factory):
        ones = ops.pack_bits(np.ones(64, dtype=np.uint8))
        b = factory.packed(0.5, 64)
        assert scc(ones, b, 64) == pytest.approx(0.0)


class TestPearson:
    def test_identical(self, factory):
        a = factory.packed(0.5, 2048)
        assert pearson(a, a, 2048) == pytest.approx(1.0)

    def test_independent(self, factory):
        a = factory.packed(0.5, 8192)
        b = factory.packed(0.5, 8192)
        assert abs(float(pearson(a, b, 8192))) < 0.08


class TestDecorrelate:
    def test_value_preserved_exactly(self, factory):
        a = factory.packed(0.37, 1024)
        d = decorrelate(a, 1024, seed=5)
        assert ops.popcount(d, 1024) == ops.popcount(a, 1024)

    def test_breaks_correlation(self, factory):
        a = factory.packed(0.5, 8192)
        d = decorrelate(a, 8192, seed=5)
        assert abs(float(scc(a, d, 8192))) < 0.1

    def test_repairs_multiplication(self, factory):
        """XNOR of a stream with itself = 1; after isolation ≈ x²."""
        x = 0.5
        a = factory.packed(x, 8192)
        bad = 2.0 * ops.popcount(ops.xnor_(a, a, 8192), 8192) / 8192 - 1.0
        d = decorrelate(a, 8192, seed=9)
        good = 2.0 * ops.popcount(ops.xnor_(a, d, 8192), 8192) / 8192 - 1.0
        assert bad == pytest.approx(1.0)
        assert good == pytest.approx(x * x, abs=0.08)


class TestMultiplyErrorVsScc:
    def test_shared_rng_hazard(self):
        result = multiply_error_vs_scc(0.5, 0.5, length=4096)
        scc_ind, err_ind = result["independent"]
        scc_sh, err_sh = result["shared"]
        assert abs(scc_ind) < 0.15
        assert scc_sh == pytest.approx(1.0)
        assert err_sh > err_ind + 0.3   # 1.0 vs 0.25 product
