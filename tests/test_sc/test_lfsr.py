"""Tests for repro.sc.lfsr."""

import numpy as np
import pytest

from repro.sc.lfsr import LFSR, maximal_taps


class TestMaximalTaps:
    def test_known_widths(self):
        assert maximal_taps(8) == (8, 6, 5, 4)
        assert maximal_taps(16) == (16, 15, 13, 4)

    def test_unknown_width_rejected(self):
        with pytest.raises(ValueError, match="no maximal-length taps"):
            maximal_taps(99)


class TestLFSR:
    @pytest.mark.parametrize("width", [3, 4, 5, 6, 7, 8])
    def test_maximal_period(self, width):
        """A maximal LFSR must visit all 2^w - 1 non-zero states."""
        lfsr = LFSR(width, seed=1)
        states = lfsr.sequence(lfsr.period)
        assert len(set(states.tolist())) == lfsr.period
        assert 0 not in states

    def test_period_property(self):
        assert LFSR(8).period == 255

    def test_deterministic(self):
        a = LFSR(10, seed=7).sequence(100)
        b = LFSR(10, seed=7).sequence(100)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_sequence(self):
        a = LFSR(10, seed=7).sequence(100)
        b = LFSR(10, seed=8).sequence(100)
        assert not np.array_equal(a, b)

    def test_zero_seed_recovers(self):
        """The all-zeros lockup state must be avoided."""
        lfsr = LFSR(8, seed=0)
        assert lfsr.state != 0
        assert np.all(lfsr.sequence(300) != 0)

    def test_states_within_width(self):
        states = LFSR(6, seed=3).sequence(200)
        assert states.max() < 64

    def test_bits_roughly_balanced(self):
        bits = LFSR(16, seed=11).bits(4096)
        assert 0.45 < bits.mean() < 0.55

    def test_step_matches_sequence(self):
        a = LFSR(8, seed=5)
        b = LFSR(8, seed=5)
        stepped = [a.step() for _ in range(16)]
        np.testing.assert_array_equal(stepped, b.sequence(16))

    def test_invalid_taps_rejected(self):
        with pytest.raises(ValueError, match="taps"):
            LFSR(8, taps=(9, 1))
