"""Tests for repro.sc.encoding."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sc.encoding import (
    Encoding,
    encoding_range,
    from_probability,
    prescale,
    to_probability,
)


class TestToProbability:
    def test_unipolar_identity(self):
        assert to_probability(0.3, Encoding.UNIPOLAR) == pytest.approx(0.3)

    def test_bipolar_mapping(self):
        # P(X=1) = (x+1)/2: the paper's example, 0.4 → 0.7
        assert to_probability(0.4, Encoding.BIPOLAR) == pytest.approx(0.7)

    def test_bipolar_extremes(self):
        assert to_probability(-1.0, Encoding.BIPOLAR) == pytest.approx(0.0)
        assert to_probability(1.0, Encoding.BIPOLAR) == pytest.approx(1.0)

    def test_unipolar_rejects_negative(self):
        with pytest.raises(ValueError, match="unipolar"):
            to_probability(-0.1, Encoding.UNIPOLAR)

    def test_bipolar_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="bipolar"):
            to_probability(1.5, Encoding.BIPOLAR)

    def test_array_input(self):
        probs = to_probability([-1.0, 0.0, 1.0], Encoding.BIPOLAR)
        np.testing.assert_allclose(probs, [0.0, 0.5, 1.0])


class TestRoundTrip:
    @given(st.floats(min_value=-1.0, max_value=1.0))
    def test_bipolar_round_trip(self, x):
        p = to_probability(x, Encoding.BIPOLAR)
        assert from_probability(p, Encoding.BIPOLAR) == pytest.approx(x)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_unipolar_round_trip(self, x):
        p = to_probability(x, Encoding.UNIPOLAR)
        assert from_probability(p, Encoding.UNIPOLAR) == pytest.approx(x)


class TestEncodingRange:
    def test_ranges(self):
        assert encoding_range(Encoding.UNIPOLAR) == (0.0, 1.0)
        assert encoding_range(Encoding.BIPOLAR) == (-1.0, 1.0)


class TestPrescale:
    def test_in_range_unchanged(self):
        scaled, factor = prescale([0.5, -0.5], Encoding.BIPOLAR)
        assert factor == 1.0
        np.testing.assert_allclose(scaled, [0.5, -0.5])

    def test_power_of_two_factor(self):
        scaled, factor = prescale([3.0, -1.0], Encoding.BIPOLAR)
        assert factor == 4.0
        np.testing.assert_allclose(scaled * factor, [3.0, -1.0])

    def test_reconstruction_invariant(self):
        values = np.array([5.7, -2.3, 0.1])
        scaled, factor = prescale(values, Encoding.BIPOLAR)
        assert np.max(np.abs(scaled)) <= 1.0
        np.testing.assert_allclose(scaled * factor, values)

    def test_unipolar_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            prescale([-1.0, 2.0], Encoding.UNIPOLAR)
