"""Tests for the two-line representation (Figure 5d)."""

import numpy as np
import pytest

from repro.sc.twoline import (
    TwoLineStream,
    two_line_add,
    two_line_multiply,
    two_line_sum,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestEncodeDecode:
    def test_paper_example(self):
        """-0.5 as M: 10110001 (4/8), S: 11111111."""
        mag = np.array([1, 0, 1, 1, 0, 0, 0, 1], dtype=np.uint8)
        sgn = np.ones(8, dtype=np.uint8)
        s = TwoLineStream(np.packbits(mag), np.packbits(sgn), 8)
        assert float(s.value()) == pytest.approx(-0.5)

    @pytest.mark.parametrize("x", [-1.0, -0.5, 0.0, 0.25, 1.0])
    def test_round_trip(self, x, rng):
        s = TwoLineStream.encode(np.array(x), 8192, rng)
        assert float(s.value()) == pytest.approx(x, abs=0.05)

    def test_out_of_range_rejected(self, rng):
        with pytest.raises(ValueError, match=r"\[-1, 1\]"):
            TwoLineStream.encode(np.array(1.5), 64, rng)

    def test_digits_bounded(self, rng):
        s = TwoLineStream.encode(np.array(-0.7), 256, rng)
        digits = s.digits()
        assert digits.min() >= -1 and digits.max() <= 1

    def test_from_digits_round_trip(self):
        digits = np.array([1, -1, 0, 1, 0, -1, -1, 1], dtype=np.int8)
        s = TwoLineStream.from_digits(digits)
        np.testing.assert_array_equal(s.digits(), digits)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            TwoLineStream(np.zeros((2, 1), dtype=np.uint8),
                          np.zeros((3, 1), dtype=np.uint8), 8)


class TestMultiply:
    def test_signs(self, rng):
        for a, b in [(0.5, 0.5), (-0.5, 0.5), (-0.5, -0.5)]:
            sa = TwoLineStream.encode(np.array(a), 8192, rng)
            sb = TwoLineStream.encode(np.array(b), 8192, rng)
            prod = two_line_multiply(sa, sb)
            assert float(prod.value()) == pytest.approx(a * b, abs=0.05)

    def test_length_mismatch_rejected(self, rng):
        sa = TwoLineStream.encode(np.array(0.5), 64, rng)
        sb = TwoLineStream.encode(np.array(0.5), 128, rng)
        with pytest.raises(ValueError, match="length"):
            two_line_multiply(sa, sb)


class TestAdd:
    def test_non_scaled_addition(self, rng):
        """Unlike the MUX adder, the two-line adder does NOT scale.

        The three-state carry counter occasionally drops a unit when both
        operands and the carry are ones simultaneously, so the result is
        slightly below the true sum.
        """
        sa = TwoLineStream.encode(np.array(0.3), 8192, rng)
        sb = TwoLineStream.encode(np.array(0.4), 8192, rng)
        total, overflow = two_line_add(sa, sb)
        assert float(total.value()) == pytest.approx(0.7, abs=0.1)
        assert int(overflow) < 0.05 * 8192

    def test_opposite_signs_cancel(self, rng):
        sa = TwoLineStream.encode(np.array(0.6), 8192, rng)
        sb = TwoLineStream.encode(np.array(-0.6), 8192, rng)
        total, _ = two_line_add(sa, sb)
        assert float(total.value()) == pytest.approx(0.0, abs=0.05)

    def test_overflow_when_sum_exceeds_one(self, rng):
        """Sums beyond ±1 cannot be represented: the paper's reason for
        rejecting this design for inner products (Section 4.1)."""
        sa = TwoLineStream.encode(np.array(0.9), 4096, rng)
        sb = TwoLineStream.encode(np.array(0.9), 4096, rng)
        total, _ = two_line_add(sa, sb)
        assert float(total.value()) < 1.2  # saturates near 1


class TestSum:
    def test_many_inputs_overflow(self, rng):
        """Accumulating many same-sign inputs must overflow and lose
        information — the measurable Section 4.1 limitation."""
        streams = [TwoLineStream.encode(np.array(0.8), 2048, rng)
                   for _ in range(6)]
        total, overflow = two_line_sum(streams)
        assert float(total.value()) <= 1.0
        assert float(total.value()) < 4.8  # far below the true sum

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            two_line_sum([])

    def test_single_stream_identity(self, rng):
        s = TwoLineStream.encode(np.array(-0.4), 4096, rng)
        total, overflow = two_line_sum([s])
        assert float(total.value()) == pytest.approx(-0.4, abs=0.05)
        assert int(overflow.sum()) == 0
