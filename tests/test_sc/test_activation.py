"""Tests for Stanh and Btanh."""

import numpy as np
import pytest

from repro.sc import activation, ops
from repro.sc.bitstream import Bitstream
from repro.sc.encoding import Encoding
from repro.sc.rng import StreamFactory


@pytest.fixture()
def factory():
    return StreamFactory(seed=0)


class TestStanh:
    @pytest.mark.parametrize("x", [-0.8, -0.3, 0.0, 0.3, 0.8])
    def test_matches_tanh_k_half_x(self, factory, x):
        """Stanh(K, x) ≈ tanh(K/2 · x) (Brown & Card)."""
        K = 8
        s = factory.streams(x, 16384)
        out = activation.stanh(s, K)
        assert float(out.value()) == pytest.approx(np.tanh(K / 2 * x),
                                                   abs=0.08)

    def test_monotone_in_input(self, factory):
        K = 10
        xs = np.linspace(-0.9, 0.9, 7)
        outs = [float(activation.stanh(factory.streams(x, 8192), K).value())
                for x in xs]
        assert all(b >= a - 0.1 for a, b in zip(outs, outs[1:]))

    def test_saturates(self, factory):
        out = activation.stanh(factory.streams(0.95, 4096), 16)
        assert float(out.value()) > 0.9

    def test_shifted_threshold_raises_output(self, factory):
        """Figure 11's K/5 threshold outputs 1 over 4/5 of the states."""
        s = factory.streams(0.0, 8192)
        canonical = float(activation.stanh(s, 20).value())
        shifted = float(activation.stanh(s, 20, threshold=4).value())
        assert shifted > canonical + 0.3

    def test_requires_bipolar(self):
        s = Bitstream.zeros((), 64, Encoding.UNIPOLAR)
        with pytest.raises(ValueError, match="bipolar"):
            activation.stanh(s, 8)

    def test_packed_matches_wrapper(self, factory):
        s = factory.streams(0.4, 1024)
        packed_out = activation.stanh_packed(s.data, 1024, 8)
        wrapped = activation.stanh(s, 8)
        np.testing.assert_array_equal(packed_out, wrapped.data)


class TestStanhExpected:
    def test_curve(self):
        np.testing.assert_allclose(
            activation.stanh_expected([0.0, 0.5], 8),
            [0.0, np.tanh(2.0)],
        )


class TestBtanh:
    def _counts_for(self, y, n, L, factory):
        """Product count stream whose signed sum per cycle has mean y."""
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, n)
        w = x * y / (x ** 2).sum()
        xs = factory.packed(x, L)
        ws = factory.packed(w, L)
        prod = ops.xnor_(xs, ws, L)
        from repro.sc.adders import parallel_counter
        return parallel_counter(prod, L)

    @pytest.mark.parametrize("y", [-1.5, -0.5, 0.5, 1.5])
    def test_approximates_tanh(self, factory, y):
        """With the original sizing K = 2N, Btanh(counts) ≈ tanh(Σxw)."""
        n, L = 16, 8192
        counts = self._counts_for(y, n, L, factory)
        bits = activation.btanh_counts(counts[None, :], n, 2 * n)
        decoded = 2.0 * bits.mean() - 1.0
        assert decoded == pytest.approx(np.tanh(y), abs=0.12)

    def test_zero_drift_near_zero(self, factory):
        n, L = 16, 8192
        counts = self._counts_for(0.0, n, L, factory)
        bits = activation.btanh_counts(counts[None, :], n, 2 * n)
        assert abs(2.0 * bits.mean() - 1.0) < 0.15

    def test_stream_wrapper(self, factory):
        counts = self._counts_for(1.0, 16, 1024, factory)
        out = activation.btanh_stream(counts[None, :], 16, 32)
        assert out.encoding is Encoding.BIPOLAR
        assert out.length == 1024

    def test_float_counts_rejected(self):
        with pytest.raises(ValueError, match="integers"):
            activation.btanh_counts(np.zeros(16), 4, 8)
