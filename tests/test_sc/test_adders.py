"""Tests for the four stochastic adders (Figure 5)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sc import adders, ops
from repro.sc.rng import StreamFactory


@pytest.fixture()
def factory():
    return StreamFactory(seed=0)


class TestOrAdd:
    def test_paper_example(self):
        """'00100101 OR 11001010' = '11101111' (3/8 + 4/8 → 7/8)."""
        a = ops.pack_bits(np.array([0, 0, 1, 0, 0, 1, 0, 1], dtype=np.uint8))
        b = ops.pack_bits(np.array([1, 1, 0, 0, 1, 0, 1, 0], dtype=np.uint8))
        out = adders.or_add(np.stack([a, b]))
        assert ops.popcount(out, 8) == 7

    def test_paper_counterexample(self):
        """With '10011000' instead, OR gives 5/8 — the multiple-
        representation inaccuracy the paper describes."""
        a = ops.pack_bits(np.array([1, 0, 0, 1, 1, 0, 0, 0], dtype=np.uint8))
        b = ops.pack_bits(np.array([1, 1, 0, 0, 1, 0, 1, 0], dtype=np.uint8))
        out = adders.or_add(np.stack([a, b]))
        assert ops.popcount(out, 8) == 5

    def test_sparse_streams_near_exact(self, factory):
        """With few ones, OR addition approaches the true sum."""
        from repro.sc.encoding import Encoding
        vals = np.array([0.02, 0.03, 0.01])
        streams = factory.packed(vals, 8192, encoding=Encoding.UNIPOLAR)
        out = adders.or_add(streams)
        assert ops.popcount(out, 8192) / 8192 == pytest.approx(0.06,
                                                               abs=0.01)

    def test_requires_summand_axis(self):
        with pytest.raises(ValueError, match="shape"):
            adders.or_add(np.zeros(4, dtype=np.uint8))


class TestMuxAdd:
    def test_scaled_sum(self, factory):
        vals = np.array([0.8, -0.4, 0.2, -0.6])
        streams = factory.packed(vals, 8192)
        sel = factory.select_signal(4, 8192)
        out = adders.mux_add(streams, sel, 8192)
        decoded = 2.0 * ops.popcount(out, 8192) / 8192 - 1.0
        assert decoded == pytest.approx(vals.mean(), abs=0.04)

    def test_batched(self, factory):
        vals = np.array([[0.5, 0.5], [-0.5, -0.5]])
        streams = factory.packed(vals, 4096)
        sel = factory.select_signal(2, 4096)
        out = adders.mux_add(streams, sel, 4096)
        decoded = 2.0 * ops.popcount(out, 4096) / 4096 - 1.0
        np.testing.assert_allclose(decoded, [0.5, -0.5], atol=0.06)


class TestParallelCounter:
    @given(st.integers(min_value=2, max_value=9))
    @settings(max_examples=10)
    def test_counts_exactly(self, n):
        rng = np.random.default_rng(n)
        bits = (rng.random((n, 64)) < 0.5).astype(np.uint8)
        counts = adders.parallel_counter(ops.pack_bits(bits), 64)
        np.testing.assert_array_equal(counts, bits.sum(axis=0))

    def test_counts_bounded(self, factory):
        streams = factory.packed(np.full(16, 0.0), 512)
        counts = adders.parallel_counter(streams, 512)
        assert counts.min() >= 0 and counts.max() <= 16


class TestApcCount:
    def test_differs_only_in_lsb(self, factory):
        streams = factory.packed(np.zeros(16), 512)
        exact = adders.parallel_counter(streams, 512)
        approx = adders.apc_count(streams, 512)
        diff = np.abs(approx.astype(int) - exact.astype(int))
        assert diff.max() <= 1

    def test_zero_mean_error(self, factory):
        """The LSB approximation must not bias the count (Table 3)."""
        rng = np.random.default_rng(0)
        vals = rng.uniform(-1, 1, 32)
        streams = factory.packed(vals, 8192)
        exact = adders.parallel_counter(streams, 8192)
        approx = adders.apc_count(streams, 8192)
        bias = (approx.astype(float) - exact).mean()
        assert abs(bias) < 0.05

    def test_relative_error_below_one_percent(self, factory):
        """Table 3's headline: <1% error vs the conventional counter."""
        rng = np.random.default_rng(1)
        total_err = []
        for _ in range(8):
            vals = rng.uniform(-1, 1, 32)
            streams = factory.packed(vals, 256)
            exact = adders.parallel_counter(streams, 256)
            approx = adders.apc_count(streams, 256)
            est_e = exact.sum() / 256
            est_a = approx.sum() / 256
            total_err.append(abs(est_a - est_e) / 32)
        assert np.mean(total_err) < 0.01


class TestApcGateEquivalents:
    def test_forty_percent_reduction(self):
        gates = adders.apc_gate_equivalents(16)
        ratio = gates["approx_full_adders"] / gates["exact_full_adders"]
        assert ratio == pytest.approx(0.6, abs=0.05)

    def test_monotone_in_inputs(self):
        small = adders.apc_gate_equivalents(16)["approx_full_adders"]
        large = adders.apc_gate_equivalents(64)["approx_full_adders"]
        assert large > small

    def test_too_few_inputs_rejected(self):
        with pytest.raises(ValueError):
            adders.apc_gate_equivalents(1)
