"""Tests for the stochastic number generators."""

import numpy as np
import pytest

from repro.sc import ops
from repro.sc.encoding import Encoding
from repro.sc.rng import IdealSNG, LfsrSNG, StreamFactory


class TestIdealSNG:
    def test_probability_accuracy(self):
        sng = IdealSNG(seed=0)
        probs = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        packed = sng.generate(probs, 8192)
        measured = ops.popcount(packed, 8192) / 8192
        np.testing.assert_allclose(measured, probs, atol=0.03)

    def test_deterministic_after_reseed(self):
        sng = IdealSNG(seed=7)
        a = sng.generate(np.array(0.5), 256)
        sng.reseed(7)
        b = sng.generate(np.array(0.5), 256)
        np.testing.assert_array_equal(a, b)

    def test_independent_streams(self):
        """Two generated streams must be (nearly) uncorrelated."""
        sng = IdealSNG(seed=1)
        packed = sng.generate(np.array([0.5, 0.5]), 8192)
        a = ops.unpack_bits(packed[0], 8192).astype(float)
        b = ops.unpack_bits(packed[1], 8192).astype(float)
        corr = np.corrcoef(a, b)[0, 1]
        assert abs(corr) < 0.05

    def test_output_shape(self):
        sng = IdealSNG(seed=0)
        out = sng.generate(np.full((3, 4), 0.5), 100)
        assert out.shape == (3, 4, 13)


class TestLfsrSNG:
    def test_probability_accuracy(self):
        sng = LfsrSNG(width=16, seed=0)
        probs = np.array([0.1, 0.5, 0.9])
        packed = sng.generate(probs, 4096)
        measured = ops.popcount(packed, 4096) / 4096
        np.testing.assert_allclose(measured, probs, atol=0.05)

    def test_pooled_streams_share_sequences(self):
        """With pool=1 every stream uses the same LFSR: equal-probability
        streams become bit-identical (the hardware correlation hazard)."""
        sng = LfsrSNG(width=12, seed=0, pool=1)
        packed = sng.generate(np.array([0.5, 0.5]), 512)
        np.testing.assert_array_equal(packed[0], packed[1])

    def test_zero_and_one_extremes(self):
        sng = LfsrSNG(width=10, seed=3)
        packed = sng.generate(np.array([0.0, 1.0]), 1023)
        counts = ops.popcount(packed, 1023)
        assert counts[0] <= 1   # threshold rounding may admit one state
        assert counts[1] == 1023

    def test_reseed_determinism(self):
        a = LfsrSNG(width=12, seed=9).generate(np.array(0.3), 256)
        b = LfsrSNG(width=12, seed=9).generate(np.array(0.3), 256)
        np.testing.assert_array_equal(a, b)


class TestStreamFactory:
    def test_streams_decode(self):
        fab = StreamFactory(seed=0)
        s = fab.streams([-0.5, 0.5], 4096)
        np.testing.assert_allclose(s.value(), [-0.5, 0.5], atol=0.05)

    def test_encoding_override(self):
        fab = StreamFactory(seed=0, encoding=Encoding.BIPOLAR)
        s = fab.streams(0.25, 1024, encoding=Encoding.UNIPOLAR)
        assert s.encoding is Encoding.UNIPOLAR

    def test_lfsr_backend(self):
        fab = StreamFactory(seed=0, sng="lfsr")
        s = fab.streams(0.5, 1024)
        assert float(s.value()) == pytest.approx(0.5, abs=0.1)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="sng"):
            StreamFactory(sng="quantum")

    def test_select_signal_range(self):
        fab = StreamFactory(seed=0)
        sel = fab.select_signal(7, 1000)
        assert sel.shape == (1000,)
        assert sel.min() >= 0 and sel.max() < 7

    def test_select_signal_roughly_uniform(self):
        fab = StreamFactory(seed=0)
        sel = fab.select_signal(4, 8000)
        counts = np.bincount(sel, minlength=4)
        assert counts.min() > 1700
