"""Property tests: word-level kernels match naive unpacked references.

The word-level engine (uint64 popcounts, packed-mask MUX, chunked column
counters, blocked clamp-composition FSM scan, cached LFSR orbits) must be
*bit-exact* with the obvious per-bit implementations — including the
awkward lengths the padding logic exists for: odd lengths, ``L % 8 != 0``
and ``L % 64 != 0``, and arbitrary batch shapes.

Every dispatch-sensitive test runs once per kernel tier via the
``kernel_tier`` fixture: the native compiled tier (skipped where not
built), the NumPy SIMD path with native dispatch pinned off, and the
NumPy < 2 byte-LUT fallback — so all pure paths stay exercised on boxes
where the faster tiers would otherwise shadow them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.native as native
from repro.sc import activation, adders, ops
from repro.sc.fsm import saturating_counter
from repro.sc.lfsr import LFSR

# Lengths biased toward the hard cases: not multiples of 8 nor 64.
lengths = st.one_of(
    st.integers(min_value=1, max_value=200),
    st.sampled_from([63, 64, 65, 127, 128, 129, 191, 255, 256, 257]),
)
batch_shapes = st.sampled_from([(), (1,), (3,), (2, 3)])


@pytest.fixture(scope="module", params=["native", "numpy-simd", "numpy-lut"])
def kernel_tier(request):
    """Pin the kernel dispatch to one tier for the whole module pass.

    Module scope keeps hypothesis happy (no function-scoped fixture in
    ``@given`` tests) and groups the three passes so each tier's state
    is entered once.
    """
    if request.param == "native":
        if not native.available():
            pytest.skip("native kernel tier not built")
        with native.override(True):
            yield request.param
    elif request.param == "numpy-simd":
        with native.override(False):
            yield request.param
    else:
        with native.override(False):
            have = ops.HAVE_BITWISE_COUNT
            ops.HAVE_BITWISE_COUNT = False
            try:
                yield request.param
            finally:
                ops.HAVE_BITWISE_COUNT = have


def random_bits(data, shape, length):
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1),
                                          label="seed"))
    return (rng.random(shape + (length,)) < 0.5)


@settings(max_examples=60, deadline=None)
@given(data=st.data(), length=lengths, shape=batch_shapes)
def test_popcount_matches_unpacked(kernel_tier, data, length, shape):
    bits = random_bits(data, shape, length)
    packed = ops.pack_bits(bits)
    ref = bits.sum(axis=-1, dtype=np.int64)
    np.testing.assert_array_equal(ops.popcount(packed, length), ref)
    np.testing.assert_array_equal(ops.popcount(packed), ref)


@settings(max_examples=60, deadline=None)
@given(data=st.data(), shape=batch_shapes,
       segment=st.integers(min_value=1, max_value=40),
       nseg=st.integers(min_value=1, max_value=12))
def test_segment_popcount_matches_unpacked(kernel_tier, data, shape,
                                           segment, nseg):
    length = segment * nseg
    if length > (1 << 22):
        return
    bits = random_bits(data, shape, length)
    packed = ops.pack_bits(bits)
    ref = bits.reshape(shape + (nseg, segment)).sum(axis=-1, dtype=np.int64)
    out = ops.segment_popcount(packed, length, segment)
    np.testing.assert_array_equal(out, ref)


@settings(max_examples=60, deadline=None)
@given(data=st.data(), length=lengths, shape=batch_shapes,
       n=st.integers(min_value=1, max_value=9))
def test_mux_select_matches_gather(data, length, shape, n):
    bits = random_bits(data, shape + (n,), length)
    packed = ops.pack_bits(bits)
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    select = rng.integers(0, n, size=length)
    out = ops.mux_select(packed, select, length)
    taken = np.take_along_axis(
        bits.astype(np.uint8),
        select.reshape((1,) * len(shape) + (1, length)), axis=-2
    )[..., 0, :]
    np.testing.assert_array_equal(out, ops.pack_bits(taken))
    assert ops.padding_is_zero(out, length)


@settings(max_examples=40, deadline=None)
@given(data=st.data(), length=lengths, shape=batch_shapes,
       n=st.integers(min_value=1, max_value=12),
       budget=st.sampled_from([1, 64, 1 << 20]))
def test_column_counters_match_unpacked(kernel_tier, data, length, shape, n,
                                        budget):
    bits = random_bits(data, shape + (n,), length)
    packed = ops.pack_bits(bits)
    exact_ref = bits.sum(axis=-2, dtype=np.int16)
    exact = adders.parallel_counter(packed, length, chunk_budget=budget)
    np.testing.assert_array_equal(exact, exact_ref)
    lsb = (exact_ref - bits[..., -1, :]) & np.int16(1)
    approx_ref = (exact_ref & ~np.int16(1)) | lsb
    approx = adders.apc_count(packed, length, chunk_budget=budget)
    np.testing.assert_array_equal(approx, approx_ref)


def test_column_counters_wide_summand_axis(kernel_tier):
    """n > 254 forces the int16 accumulator (numpy) / lane-flush (native)
    path."""
    rng = np.random.default_rng(0)
    bits = rng.random((300, 40)) < 0.5
    packed = ops.pack_bits(bits)
    np.testing.assert_array_equal(
        adders.parallel_counter(packed, 40),
        bits.sum(axis=-2, dtype=np.int16))
    exact = bits.sum(axis=-2, dtype=np.int16)
    lsb = (exact - bits[-1, :]) & np.int16(1)
    np.testing.assert_array_equal(
        adders.apc_count(packed, 40), (exact & ~np.int16(1)) | lsb)


def _counter_loop_reference(inc, n_states, init, threshold):
    state = np.full(inc.shape[:-1], init, dtype=np.int64)
    out = np.empty(inc.shape, dtype=bool)
    for t in range(inc.shape[-1]):
        state = np.clip(state + inc[..., t], 0, n_states - 1)
        out[..., t] = state >= threshold
    return out


@settings(max_examples=80, deadline=None)
@given(data=st.data(), shape=batch_shapes,
       T=st.integers(min_value=1, max_value=150),
       n_states=st.integers(min_value=1, max_value=24),
       block=st.one_of(st.none(), st.integers(min_value=1, max_value=20)))
def test_saturating_counter_matches_loop(kernel_tier, data, shape, T,
                                         n_states, block):
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    inc = rng.integers(-30, 31, size=shape + (T,))
    init = int(rng.integers(0, n_states))
    threshold = int(rng.integers(0, n_states + 2))
    out = saturating_counter(inc, n_states, init=init, threshold=threshold,
                             block=block)
    ref = _counter_loop_reference(inc, n_states, init, threshold)
    np.testing.assert_array_equal(out, ref)


@settings(max_examples=40, deadline=None)
@given(data=st.data(), length=lengths, shape=batch_shapes,
       n_states=st.integers(min_value=2, max_value=32))
def test_stanh_packed_matches_bit_fsm(kernel_tier, data, length, shape,
                                      n_states):
    bits = random_bits(data, shape, length)
    packed = ops.pack_bits(bits)
    threshold = data.draw(st.one_of(
        st.none(), st.integers(min_value=1, max_value=n_states)))
    out = activation.stanh_packed(packed, length, n_states,
                                  threshold=threshold)
    inc = bits.astype(np.int64) * 2 - 1
    ref = _counter_loop_reference(
        inc, n_states, n_states // 2,
        n_states // 2 if threshold is None else threshold)
    np.testing.assert_array_equal(out, ops.pack_bits(ref))
    assert ops.padding_is_zero(out, length)


@settings(max_examples=25, deadline=None)
@given(width=st.sampled_from([3, 5, 8, 10, 13, 16]),
       seed=st.integers(min_value=1, max_value=2**16),
       n=st.integers(min_value=1, max_value=300))
def test_lfsr_sequence_matches_stepping(width, seed, n):
    table = LFSR(width, seed=seed)
    stepped = LFSR(width, seed=seed)
    got = table.sequence(n)
    ref = np.array([stepped.step() for _ in range(n)], dtype=np.uint32)
    np.testing.assert_array_equal(got, ref)
    assert table.state == stepped.state
    # Continuation from the advanced phase stays aligned.
    np.testing.assert_array_equal(
        table.sequence(7),
        np.array([stepped.step() for _ in range(7)], dtype=np.uint32))


def test_lfsr_wraps_past_period():
    a, b = LFSR(6, seed=11), LFSR(6, seed=11)
    n = a.period * 2 + 5
    np.testing.assert_array_equal(
        a.sequence(n), np.array([b.step() for _ in range(n)],
                                dtype=np.uint32))


@settings(max_examples=30, deadline=None)
@given(data=st.data(), length=lengths, shape=batch_shapes)
def test_padding_invariant_maintained(data, length, shape):
    bits = random_bits(data, shape, length)
    packed = ops.pack_bits(bits)
    assert ops.padding_is_zero(packed, length)
    assert ops.padding_is_zero(ops.not_(packed, length), length)
    assert ops.padding_is_zero(
        ops.xnor_(packed, ops.not_(packed, length), length), length)


def test_popcount_rejects_mismatched_width():
    packed = ops.pack_bits(np.ones(16, dtype=np.uint8))
    with pytest.raises(ValueError):
        ops.popcount(packed, 32)


@settings(max_examples=40, deadline=None)
@given(data=st.data(), length=lengths, shape=batch_shapes,
       n=st.integers(min_value=1, max_value=40))
def test_transpose_pack_round_trips_bits(kernel_tier, data, length, shape, n):
    """transpose_pack: row t of the result holds the n streams' bits at
    cycle t (zero-padded to the word alignment)."""
    bits = random_bits(data, shape + (n,), length)        # (..., n, L)
    packed = ops.pack_bits(bits)
    t = ops.transpose_pack(packed, length)                # (..., L, W)
    assert t.shape[:-2] == shape and t.shape[-2] == length
    assert t.shape[-1] % 4 == 0
    back = np.unpackbits(t, axis=-1)[..., :n]             # (..., L, n)
    np.testing.assert_array_equal(back, np.swapaxes(bits, -1, -2))


@settings(max_examples=40, deadline=None)
@given(data=st.data(), nbytes=st.integers(min_value=1, max_value=20),
       shape=batch_shapes)
def test_popcount_sum_counts_all_bytes(kernel_tier, data, nbytes, shape):
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    packed = rng.integers(0, 256, shape + (nbytes,), dtype=np.uint8)
    ref = np.unpackbits(packed, axis=-1).sum(axis=-1, dtype=np.int64)
    np.testing.assert_array_equal(ops.popcount_sum(packed), ref)
    np.testing.assert_array_equal(
        ops.popcount_sum(packed, dtype=np.int16), ref.astype(np.int16))


@settings(max_examples=25, deadline=None)
@given(data=st.data(), length=lengths,
       n=st.integers(min_value=1, max_value=24),
       rows=st.integers(min_value=1, max_value=6))
def test_transposed_counting_matches_apc_count(kernel_tier, data, length, n,
                                               rows):
    """The engine's transposed counting identity:
    count = n - popcount(xT ^ wT), LSB patched with the last product bit
    — must equal the word-level APC counter bit for bit."""
    xb = random_bits(data, (rows, n), length)
    wb = random_bits(data, (n,), length)
    x = ops.pack_bits(xb)
    w = ops.pack_bits(wb)
    ref = adders.apc_count(ops.xnor_(x, w[None], length), length)
    xT = ops.transpose_pack(x, length)
    wT = ops.transpose_pack(w[None], length)[0]
    ham = ops.popcount_sum(xT ^ wT[None], dtype=np.int16)
    exact = np.int16(n) - ham
    x_last = ops.unpack_bits(x[:, -1, :], length)
    w_last = ops.unpack_bits(w[-1, :], length)
    prod_last = np.uint8(1) ^ x_last ^ w_last[None]
    one = np.int16(1)
    got = (exact & ~one) | ((exact ^ prod_last) & one)
    np.testing.assert_array_equal(got, ref)


