"""Tests for repro.sc.bitstream.Bitstream."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sc.bitstream import Bitstream
from repro.sc.encoding import Encoding
from repro.sc.rng import StreamFactory


class TestConstruction:
    def test_from_bits_round_trip(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 0, 1, 1, 0], dtype=np.uint8)
        s = Bitstream.from_bits(bits, Encoding.UNIPOLAR)
        assert s.length == 10
        np.testing.assert_array_equal(s.to_bits(), bits)

    def test_zeros_and_ones_values(self):
        z = Bitstream.zeros((3,), 100, Encoding.BIPOLAR)
        o = Bitstream.ones((3,), 100, Encoding.BIPOLAR)
        np.testing.assert_allclose(z.value(), -1.0)
        np.testing.assert_allclose(o.value(), 1.0)

    def test_ones_partial_byte(self):
        o = Bitstream.ones((), 13, Encoding.UNIPOLAR)
        assert o.popcount() == 13

    def test_wrong_byte_count_rejected(self):
        with pytest.raises(ValueError, match="bytes"):
            Bitstream(np.zeros(3, dtype=np.uint8), 100, Encoding.BIPOLAR)

    def test_bad_encoding_rejected(self):
        with pytest.raises(ValueError, match="encoding"):
            Bitstream(np.zeros(2, dtype=np.uint8), 16, "bipolar")


class TestDecoding:
    def test_paper_example_unipolar(self):
        """'0100110100' has four ones in ten bits → 0.4."""
        s = Bitstream.from_bits([0, 1, 0, 0, 1, 1, 0, 1, 0, 0],
                                Encoding.UNIPOLAR)
        assert s.value() == pytest.approx(0.4)

    def test_paper_example_bipolar(self):
        """'1011011101' has 7/10 ones → bipolar 0.4."""
        s = Bitstream.from_bits([1, 0, 1, 1, 0, 1, 1, 1, 0, 1],
                                Encoding.BIPOLAR)
        assert s.value() == pytest.approx(0.4)

    @given(st.floats(min_value=-1.0, max_value=1.0))
    @settings(max_examples=20)
    def test_encode_decode_error_bound(self, x):
        fab = StreamFactory(seed=5)
        s = fab.streams(x, 2048)
        # SNG error ~ 1/sqrt(L); allow 5 sigma.
        assert abs(float(s.value()) - x) < 5.0 / np.sqrt(2048)


class TestOperators:
    def test_unipolar_and_multiplies(self):
        fab = StreamFactory(seed=1, encoding=Encoding.UNIPOLAR)
        a = fab.streams(0.6, 8192)
        b = fab.streams(0.5, 8192)
        assert float((a & b).value()) == pytest.approx(0.3, abs=0.05)

    def test_bipolar_xnor_multiplies(self):
        fab = StreamFactory(seed=1)
        a = fab.streams(0.6, 8192)
        b = fab.streams(-0.5, 8192)
        assert float(a.xnor(b).value()) == pytest.approx(-0.3, abs=0.05)

    def test_multiply_dispatches_on_encoding(self):
        fab_u = StreamFactory(seed=2, encoding=Encoding.UNIPOLAR)
        a, b = fab_u.streams(0.5, 4096), fab_u.streams(0.5, 4096)
        assert float(a.multiply(b).value()) == pytest.approx(0.25, abs=0.05)
        fab_b = StreamFactory(seed=2, encoding=Encoding.BIPOLAR)
        c, d = fab_b.streams(0.5, 4096), fab_b.streams(0.5, 4096)
        assert float(c.multiply(d).value()) == pytest.approx(0.25, abs=0.08)

    def test_invert_negates_bipolar(self):
        fab = StreamFactory(seed=3)
        a = fab.streams(0.7, 4096)
        assert float((~a).value()) == pytest.approx(-0.7, abs=0.05)

    def test_length_mismatch_rejected(self):
        a = Bitstream.zeros((), 16, Encoding.BIPOLAR)
        b = Bitstream.zeros((), 24, Encoding.BIPOLAR)
        with pytest.raises(ValueError, match="length"):
            _ = a & b

    def test_encoding_mismatch_rejected(self):
        a = Bitstream.zeros((), 16, Encoding.BIPOLAR)
        b = Bitstream.zeros((), 16, Encoding.UNIPOLAR)
        with pytest.raises(ValueError, match="encoding"):
            _ = a ^ b

    def test_non_bitstream_rejected(self):
        a = Bitstream.zeros((), 16, Encoding.BIPOLAR)
        with pytest.raises(TypeError):
            _ = a & np.zeros(2, dtype=np.uint8)


class TestBatching:
    def test_getitem(self):
        fab = StreamFactory(seed=4)
        s = fab.streams([0.1, 0.5, -0.5], 512)
        sub = s[1]
        assert sub.shape == ()
        assert float(sub.value()) == pytest.approx(0.5, abs=0.15)

    def test_stack(self):
        a = Bitstream.zeros((), 64, Encoding.BIPOLAR)
        b = Bitstream.ones((), 64, Encoding.BIPOLAR)
        stacked = Bitstream.stack([a, b])
        assert stacked.shape == (2,)
        np.testing.assert_allclose(stacked.value(), [-1.0, 1.0])

    def test_stack_empty_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            Bitstream.stack([])

    def test_segment_counts(self):
        s = Bitstream.from_bits([1] * 16 + [0] * 16, Encoding.UNIPOLAR)
        np.testing.assert_array_equal(s.segment_counts(16), [16, 0])
