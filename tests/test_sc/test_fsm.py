"""Tests for the saturating-counter FSM engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sc.fsm import saturating_counter


class TestSaturatingCounter:
    def test_all_up_saturates_high(self):
        inc = np.ones(32, dtype=np.int64)
        out = saturating_counter(inc, n_states=8)
        assert out[-1]  # saturated in the right half
        assert out[8:].all()

    def test_all_down_saturates_low(self):
        inc = -np.ones(32, dtype=np.int64)
        out = saturating_counter(inc, n_states=8)
        assert not out[1:].any()

    def test_threshold_override(self):
        """A low threshold (Figure 11) outputs 1 from lower states."""
        inc = np.array([-1, -1, 1, 1], dtype=np.int64)
        default = saturating_counter(inc, n_states=10)
        low = saturating_counter(inc, n_states=10, threshold=2)
        assert low.sum() >= default.sum()

    def test_batched_independent_rows(self):
        inc = np.stack([np.ones(16, dtype=np.int64),
                        -np.ones(16, dtype=np.int64)])
        out = saturating_counter(inc, n_states=4)
        assert out[0].all()
        assert not out[1, 1:].any()

    @given(st.integers(min_value=2, max_value=32))
    @settings(max_examples=15)
    def test_state_never_escapes(self, n_states):
        """States saturate: output must be valid for any increments."""
        rng = np.random.default_rng(n_states)
        inc = rng.integers(-50, 50, size=100)
        out = saturating_counter(inc, n_states=n_states)
        assert out.shape == (100,)
        assert out.dtype == bool

    def test_init_override(self):
        inc = np.zeros(4, dtype=np.int64)
        high = saturating_counter(inc, n_states=8, init=7)
        low = saturating_counter(inc, n_states=8, init=0)
        assert high.all()
        assert not low.any()

    def test_bad_init_rejected(self):
        with pytest.raises(ValueError, match="init"):
            saturating_counter(np.zeros(4, dtype=np.int64), 8, init=9)

    def test_float_increments_rejected(self):
        with pytest.raises(ValueError, match="integers"):
            saturating_counter(np.zeros(4), 8)
