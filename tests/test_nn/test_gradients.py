"""Numerical gradient checks for every trainable layer."""

import numpy as np
import pytest

from repro.nn.activations import ReLU, Sigmoid, Tanh
from repro.nn.conv import Conv2D
from repro.nn.dense import Dense
from repro.nn.loss import SoftmaxCrossEntropy
from repro.nn.module import Flatten, Sequential
from repro.nn.pool import AvgPool2D, MaxPool2D

EPS = 1e-5


def numerical_grad(f, x):
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + EPS
        plus = f()
        x[idx] = orig - EPS
        minus = f()
        x[idx] = orig
        grad[idx] = (plus - minus) / (2 * EPS)
        it.iternext()
    return grad


def check_layer_input_grad(layer, x, rtol=1e-4):
    """Compare backward() against numerical gradients of sum(forward)."""
    out = layer.forward(x, training=True)
    analytic = layer.backward(np.ones_like(out))
    numeric = numerical_grad(lambda: layer.forward(x, training=False).sum(),
                             x)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=1e-5)


def check_param_grads(layer, x, rtol=1e-4):
    out = layer.forward(x, training=True)
    layer.zero_grad()
    layer.backward(np.ones_like(out))
    for p in layer.params:
        numeric = numerical_grad(
            lambda: layer.forward(x, training=False).sum(), p.value
        )
        np.testing.assert_allclose(p.grad, numeric, rtol=rtol, atol=1e-5)


class TestDenseGradients:
    def test_input_grad(self, rng):
        layer = Dense(5, 3, seed=0)
        check_layer_input_grad(layer, rng.normal(size=(4, 5)))

    def test_param_grads(self, rng):
        layer = Dense(5, 3, seed=0)
        check_param_grads(layer, rng.normal(size=(4, 5)))


class TestConvGradients:
    def test_input_grad(self, rng):
        layer = Conv2D(2, 3, 3, seed=0)
        check_layer_input_grad(layer, rng.normal(size=(2, 2, 6, 6)))

    def test_param_grads(self, rng):
        layer = Conv2D(1, 2, 3, seed=0)
        check_param_grads(layer, rng.normal(size=(2, 1, 5, 5)))


class TestPoolGradients:
    def test_avg_pool(self, rng):
        check_layer_input_grad(AvgPool2D(2), rng.normal(size=(2, 3, 4, 4)))

    def test_max_pool(self, rng):
        # Use well-separated values to avoid argmax ties under FD probing.
        x = rng.permutation(np.arange(96, dtype=np.float64)).reshape(
            2, 3, 4, 4
        )
        check_layer_input_grad(MaxPool2D(2), x)


class TestActivationGradients:
    @pytest.mark.parametrize("cls", [Tanh, Sigmoid])
    def test_smooth_activations(self, cls, rng):
        check_layer_input_grad(cls(), rng.normal(size=(3, 7)))

    def test_relu(self, rng):
        x = rng.normal(size=(3, 7))
        x[np.abs(x) < 0.1] = 0.5  # keep away from the kink
        check_layer_input_grad(ReLU(), x)


class TestLossGradients:
    def test_softmax_cross_entropy(self, rng):
        logits = rng.normal(size=(4, 5))
        labels = np.array([0, 2, 1, 4])
        loss = SoftmaxCrossEntropy()
        loss.forward(logits, labels)
        analytic = loss.backward()
        numeric = np.zeros_like(logits)
        for idx in np.ndindex(*logits.shape):
            orig = logits[idx]
            logits[idx] = orig + EPS
            plus = SoftmaxCrossEntropy().forward(logits, labels)
            logits[idx] = orig - EPS
            minus = SoftmaxCrossEntropy().forward(logits, labels)
            logits[idx] = orig
            numeric[idx] = (plus - minus) / (2 * EPS)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)


class TestSequentialGradients:
    def test_small_network_end_to_end(self, rng):
        model = Sequential([
            Conv2D(1, 2, 3, seed=1),
            AvgPool2D(2),
            Tanh(),
            Flatten(),
            Dense(2 * 2 * 2, 3, seed=2),
        ])
        x = rng.normal(size=(2, 1, 6, 6))
        labels = np.array([0, 2])
        loss = SoftmaxCrossEntropy()
        loss.forward(model.forward(x, training=True), labels)
        model.zero_grad()
        model.backward(loss.backward())
        p = model.params[0]
        analytic = p.grad.copy()
        numeric = numerical_grad(
            lambda: SoftmaxCrossEntropy().forward(
                model.forward(x, training=False), labels
            ),
            p.value,
        )
        np.testing.assert_allclose(analytic, numeric, rtol=1e-3, atol=1e-6)
