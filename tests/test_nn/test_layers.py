"""Shape/behaviour tests for the NN layers."""

import numpy as np
import pytest

from repro.nn.activations import ReLU, Sigmoid, Tanh
from repro.nn.conv import Conv2D, col2im, im2col
from repro.nn.dense import Dense
from repro.nn.loss import MSELoss, SoftmaxCrossEntropy
from repro.nn.module import Flatten, Parameter, Sequential
from repro.nn.pool import AvgPool2D, MaxPool2D


class TestIm2Col:
    def test_patch_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        cols = im2col(x, 3)
        assert cols.shape == (1, 4, 9)
        np.testing.assert_array_equal(
            cols[0, 0], [0, 1, 2, 4, 5, 6, 8, 9, 10]
        )

    def test_col2im_inverts_scatter(self, rng):
        x_shape = (2, 3, 6, 6)
        cols = rng.normal(size=(2, 16, 27))
        out = col2im(cols, x_shape, 3)
        assert out.shape == x_shape

    def test_multichannel_order_matches_weights(self, rng):
        """im2col channel-major layout must match Conv2D weight layout."""
        x = rng.normal(size=(1, 2, 5, 5))
        conv = Conv2D(2, 1, 3, seed=0)
        out = conv.forward(x)
        cols = im2col(x, 3)
        manual = cols[0] @ conv.weight.value.T + conv.bias.value
        np.testing.assert_allclose(out[0, 0].reshape(-1), manual[:, 0])


class TestConv2D:
    def test_output_shape(self, rng):
        conv = Conv2D(1, 20, 5, seed=0)
        out = conv.forward(rng.normal(size=(2, 1, 28, 28)))
        assert out.shape == (2, 20, 24, 24)

    def test_fan_in(self):
        assert Conv2D(20, 50, 5).fan_in == 500

    def test_channel_mismatch_rejected(self, rng):
        conv = Conv2D(3, 4, 3)
        with pytest.raises(ValueError, match="channels"):
            conv.forward(rng.normal(size=(1, 2, 8, 8)))


class TestPooling:
    def test_avg_pool_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = AvgPool2D(2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = MaxPool2D(2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_non_divisible_rejected(self, rng):
        with pytest.raises(ValueError, match="multiples"):
            AvgPool2D(2).forward(rng.normal(size=(1, 1, 5, 5)))


class TestDense:
    def test_affine(self, rng):
        layer = Dense(4, 2, seed=0)
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(
            layer.forward(x), x @ layer.weight.value.T + layer.bias.value
        )

    def test_feature_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="features"):
            Dense(4, 2).forward(rng.normal(size=(3, 5)))


class TestActivations:
    def test_tanh_range(self, rng):
        out = Tanh().forward(rng.normal(size=(5, 5)) * 10)
        assert np.all(np.abs(out) <= 1.0)

    def test_relu_zeroes_negatives(self):
        out = ReLU().forward(np.array([-1.0, 0.5]))
        np.testing.assert_allclose(out, [0.0, 0.5])

    def test_sigmoid_range(self, rng):
        out = Sigmoid().forward(rng.normal(size=(5,)) * 100)
        assert np.all((out >= 0) & (out <= 1))


class TestLosses:
    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss = SoftmaxCrossEntropy().forward(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_cross_entropy_uniform(self):
        logits = np.zeros((1, 4))
        loss = SoftmaxCrossEntropy().forward(logits, np.array([2]))
        assert loss == pytest.approx(np.log(4))

    def test_mse(self):
        loss = MSELoss()
        assert loss.forward(np.array([1.0, 2.0]),
                            np.array([0.0, 0.0])) == pytest.approx(2.5)


class TestSequential:
    def test_state_dict_round_trip(self, rng):
        a = Sequential([Dense(4, 3, seed=1), Tanh(), Dense(3, 2, seed=2)])
        b = Sequential([Dense(4, 3, seed=9), Tanh(), Dense(3, 2, seed=8)])
        b.load_state_dict(a.state_dict())
        x = rng.normal(size=(2, 4))
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_load_wrong_count_rejected(self):
        a = Sequential([Dense(4, 3)])
        b = Sequential([Dense(4, 3), Dense(3, 2)])
        with pytest.raises(ValueError, match="parameters"):
            b.load_state_dict(a.state_dict())

    def test_flatten_round_trip(self, rng):
        f = Flatten()
        x = rng.normal(size=(2, 3, 4))
        out = f.forward(x)
        assert out.shape == (2, 12)
        assert f.backward(out).shape == x.shape

    def test_predict_argmax(self, rng):
        model = Sequential([Dense(4, 3, seed=0)])
        x = rng.normal(size=(5, 4))
        preds = model.predict(x)
        np.testing.assert_array_equal(preds,
                                      np.argmax(model.forward(x), axis=1))

    def test_parameter_repr_and_zero_grad(self):
        p = Parameter(np.ones((2, 2)), name="w")
        p.grad += 3.0
        p.zero_grad()
        assert (p.grad == 0).all()
