"""Optimizer and trainer behaviour tests."""

import numpy as np
import pytest

from repro.nn.activations import Tanh
from repro.nn.dense import Dense
from repro.nn.lenet import LENET5_LAYER_SIZES, build_lenet5
from repro.nn.module import Sequential
from repro.nn.optim import SGD, Adam
from repro.nn.trainer import Trainer, evaluate_accuracy, evaluate_error_rate


def _toy_problem(rng, n=200):
    """Linearly separable 2-class problem."""
    x = rng.normal(size=(n, 4))
    labels = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return x, labels


class TestOptimizers:
    @pytest.mark.parametrize("opt_cls,kwargs", [
        (SGD, {"lr": 0.1, "momentum": 0.9}),
        (Adam, {"lr": 0.01}),
    ])
    def test_reduces_loss(self, opt_cls, kwargs, rng):
        from repro.nn.loss import SoftmaxCrossEntropy
        x, labels = _toy_problem(rng)
        model = Sequential([Dense(4, 2, seed=0)])
        opt = opt_cls(model.params, **kwargs)
        loss_fn = SoftmaxCrossEntropy()
        first = None
        for _ in range(150):
            loss = loss_fn.forward(model.forward(x, training=True), labels)
            if first is None:
                first = loss
            model.zero_grad()
            model.backward(loss_fn.backward())
            opt.step()
        assert loss < first * 0.6

    def test_sgd_weight_decay_shrinks_weights(self, rng):
        model = Sequential([Dense(4, 2, seed=0)])
        opt = SGD(model.params, lr=0.1, momentum=0.0, weight_decay=0.5)
        before = np.abs(model.params[0].value).sum()
        for _ in range(10):
            model.zero_grad()
            opt.step()
        assert np.abs(model.params[0].value).sum() < before


class TestTrainer:
    def test_learns_toy_problem(self, rng):
        x, labels = _toy_problem(rng, n=400)
        model = Sequential([Dense(4, 8, seed=0), Tanh(),
                            Dense(8, 2, seed=1)])
        trainer = Trainer(model, lr=0.1, batch_size=32, seed=0)
        trainer.fit(x, labels, epochs=5)
        assert evaluate_accuracy(model, x, labels) > 0.9

    def test_history_recorded(self, rng):
        x, labels = _toy_problem(rng)
        model = Sequential([Dense(4, 2, seed=0)])
        trainer = Trainer(model, seed=0)
        history = trainer.fit(x, labels, epochs=3, x_val=x, y_val=labels)
        assert len(history) == 3

    def test_lr_decays(self, rng):
        x, labels = _toy_problem(rng)
        model = Sequential([Dense(4, 2, seed=0)])
        trainer = Trainer(model, lr=0.1, lr_decay=0.5, seed=0)
        trainer.fit(x, labels, epochs=2)
        assert trainer.optimizer.lr == pytest.approx(0.025)

    def test_error_rate_is_percent(self, rng):
        x, labels = _toy_problem(rng)
        model = Sequential([Dense(4, 2, seed=0)])
        err = evaluate_error_rate(model, x, labels)
        acc = evaluate_accuracy(model, x, labels)
        assert err == pytest.approx(100 * (1 - acc))


class TestLeNet5:
    def test_layer_sizes_match_paper(self, rng):
        """The 784-11520-2880-3200-800-500-10 configuration."""
        model = build_lenet5("max", seed=0)
        x = rng.normal(size=(1, 1, 28, 28))
        sizes = [x.size]
        for layer in model.layers:
            x = layer.forward(x)
            sizes.append(x.size)
        # conv1 out, pool1 out, conv2 out, pool2 out, fc1 out, fc2 out
        assert sizes[1] == 11520
        assert sizes[2] == 2880
        assert sizes[4] == 3200
        assert sizes[5] == 800
        assert sizes[-2] == 500
        assert sizes[-1] == 10
        assert LENET5_LAYER_SIZES == (784, 11520, 2880, 3200, 800, 500, 10)

    def test_pooling_variants(self):
        from repro.nn.pool import AvgPool2D, MaxPool2D
        assert any(isinstance(l, MaxPool2D)
                   for l in build_lenet5("max").layers)
        assert any(isinstance(l, AvgPool2D)
                   for l in build_lenet5("avg").layers)

    def test_unknown_pooling_rejected(self):
        with pytest.raises(ValueError, match="pooling"):
            build_lenet5("median")

    def test_tiny_training_beats_chance(self, tiny_trained_lenet,
                                        small_dataset):
        from repro.data.synthetic_mnist import to_bipolar
        _, _, x_test, y_test = small_dataset
        acc = evaluate_accuracy(tiny_trained_lenet, to_bipolar(x_test),
                                y_test)
        assert acc > 0.5
