"""Legacy setup shim.

The evaluation environment has no ``wheel`` package and no network, so a
PEP-517 editable install cannot build a wheel; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to
``setup.py develop``.  All metadata lives in ``pyproject.toml``.

The native kernel tier (``src/repro/native/kernels.c``) is an *optional*
build product: ``build_py`` tries to compile it next to the package so
installs ship a prebuilt library, but a box without a C toolchain just
prints a note and installs the pure-NumPy fallback — the package works
either way (see DESIGN.md, "Native kernel tier").  ``repro.native`` also
compiles lazily into a per-user cache on first import, so even a source
checkout never *needs* this step.
"""

from pathlib import Path

from setuptools import setup
from setuptools.command.build_py import build_py


class build_py_with_native(build_py):
    """build_py + best-effort native kernel library."""

    def run(self):
        super().run()
        self._build_native()

    def _build_native(self):
        import sys
        sys.path.insert(0, str(Path(__file__).parent / "src"))
        try:
            from repro.native.build import NativeBuildError, build_into
        except Exception as exc:  # pragma: no cover - broken checkout
            print(f"skipping native kernel build (import failed: {exc})")
            return
        finally:
            sys.path.pop(0)
        target_dir = Path(self.build_lib or "build") / "repro" / "native"
        if not target_dir.is_dir():
            # develop/editable installs never copy the package; the
            # lazy first-import compile covers them.
            return
        try:
            built = build_into(target_dir)
            print(f"built native kernel library: {built}")
        except NativeBuildError as exc:
            print(f"native kernel library not built ({exc}); "
                  f"repro will run on the pure-NumPy kernel tier")


setup(cmdclass={"build_py": build_py_with_native})
