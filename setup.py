"""Legacy setup shim.

The evaluation environment has no ``wheel`` package and no network, so a
PEP-517 editable install cannot build a wheel; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to
``setup.py develop``.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
